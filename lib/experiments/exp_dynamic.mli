(** Experiment E10 (extension): dynamic and reconfigurable ambipolar logic
    — the background claims of Section 2.2.

    Quantifies (a) the expressive power of the in-field reconfigurable
    dynamic cells (O'Connor et al. report eight 2-input functions from
    seven CNTFETs; our series/parallel cell reaches more with six), (b) the
    dynamic GNOR's function family, and (c) why the paper's static library
    wins on power: the evaluate-precharge activity of a dynamic GNOR far
    exceeds the combinational activity factor of the static generalized
    NOR. *)

type result = {
  reconf_functions : int;
  reconf_transistors : int;
  gnor2_functions : int;
  gnor2_transistors : int;
  gnor2_dynamic_alpha : float;  (** worst configuration *)
  static_gnor2_alpha : float;
}

val run : unit -> result
val print : Format.formatter -> result -> unit

val scalars : result -> (string * float) list
(** Manifest scalars: reconfigurable-cell counts and activity factors. *)
