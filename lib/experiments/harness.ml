module E = Runtime.Cnt_error
module C = Runtime.Checkpoint
module S = Runtime.Supervisor
module T = Runtime.Telemetry
module Jn = Runtime.Journal
module Tc = Runtime.Tracectx

type mode = Keep_going | Strict

type status =
  | Passed of {
      wall : float;
      scalars : (string * float) list;
      degraded : bool;
      attempts : int;
    }
  | Failed of { wall : float; attempts : int; error : E.t }
  | Skipped
  | Resumed of C.entry

type entry = {
  name : string;
  doc : string;
  run : degraded:bool -> Format.formatter -> (string * float) list;
}

type config = {
  mode : mode;
  policy : S.policy option;
  run_name : string;
  manifest_path : string option;
  resume : bool;
  seed : int64;
  patterns : int;
}

let default_config =
  {
    mode = Keep_going;
    policy = None;
    run_name = "all";
    manifest_path = None;
    resume = false;
    seed = 42L;
    patterns = Techmap.Estimate.default_patterns;
  }

type summary = { mode : mode; results : (string * status) list; aborted : bool }

let entry name doc run = { name; doc; run }

(* One lifecycle event per experiment attempt. [experiment_started] is
   emitted by the process actually doing the work — inside the worker
   when supervised — so the journal records the worker PID and the trace
   exporter can anchor the experiment's span tree on that track. *)
let note_started ~degraded name =
  if Jn.enabled () then
    Jn.emit ~level:Jn.Debug Jn.Experiment_started
      [ ("experiment", name); ("degraded", string_of_bool degraded) ]

let note_done name status =
  if Jn.enabled () then
    let fields =
      match status with
      | Passed { wall; degraded; attempts; scalars } ->
          [
            ("experiment", name);
            ("status", if degraded then "degraded" else "passed");
            ("wall_s", Printf.sprintf "%.3f" wall);
            ("attempts", string_of_int attempts);
            ("scalars", string_of_int (List.length scalars));
          ]
      | Failed { wall; attempts; error } ->
          [
            ("experiment", name);
            ("status", "failed");
            ("wall_s", Printf.sprintf "%.3f" wall);
            ("attempts", string_of_int attempts);
            ("error", E.code_name error.E.code);
          ]
      | Resumed en ->
          [
            ("experiment", name);
            ("status", "resumed");
            ("from", C.status_name en.C.status);
          ]
      | Skipped -> [ ("experiment", name); ("status", "skipped") ]
    in
    Jn.emit ~level:Jn.Debug Jn.Experiment_done fields

(* One trace per experiment: lifecycle events here and in the forked
   worker (which derives a child context across the fork) share the id. *)
let run_one config ppf e =
  Tc.with_ctx (Tc.mint_root ()) @@ fun () ->
  Format.fprintf ppf "@.=== %s: %s ===@." e.name e.doc;
  match config.policy with
  | None -> (
      note_started ~degraded:false e.name;
      let t0 = Unix.gettimeofday () in
      match
        E.protect ~stage:E.Experiment (fun () ->
            T.with_span e.name (fun () -> e.run ~degraded:false ppf))
      with
      | Ok scalars ->
          Passed
            {
              wall = Unix.gettimeofday () -. t0;
              scalars;
              degraded = false;
              attempts = 1;
            }
      | Result.Error err ->
          Failed
            {
              wall = Unix.gettimeofday () -. t0;
              attempts = 1;
              error = E.with_context err [ ("experiment", e.name) ];
            })
  | Some policy -> (
      (* The worker inherits the parent's telemetry flag across the fork.
         It profiles just its own entry (reset on entry, snapshot on exit);
         the profile rides the marshalled result back over the supervisor
         pipe and is grafted under a span named for the experiment. *)
      let outcome =
        S.run ~policy ~name:e.name (fun ~degraded ->
            note_started ~degraded e.name;
            if T.enabled () then T.reset ();
            let scalars = e.run ~degraded ppf in
            let prof = if T.enabled () then Some (T.snapshot ()) else None in
            (scalars, prof))
      in
      match outcome.S.value with
      | Ok (scalars, prof) ->
          Option.iter
            (fun p ->
              let entry_span =
                {
                  T.span_name = e.name;
                  calls = outcome.S.attempts;
                  total_s = outcome.S.wall_time;
                  children = p.T.p_spans;
                }
              in
              T.merge { p with T.p_spans = [ entry_span ] })
            prof;
          Passed
            {
              wall = outcome.S.wall_time;
              scalars;
              degraded = outcome.S.degraded;
              attempts = outcome.S.attempts;
            }
      | Result.Error err ->
          Failed
            {
              wall = outcome.S.wall_time;
              attempts = outcome.S.attempts;
              error = E.with_context err [ ("experiment", e.name) ];
            })

(* A passing manifest entry resumes only if it was produced by the same
   workload: same seed and same pattern count. *)
let resumable config manifest name =
  if not config.resume then None
  else
    match C.find manifest name with
    | Some en
      when (en.C.status = C.Passed || en.C.status = C.Degraded)
           && en.C.patterns = config.patterns
           && en.C.seed = config.seed ->
        Some en
    | _ -> None

let checkpoint config manifest name status =
  match config.manifest_path with
  | None -> ()
  | Some path ->
      let updated =
        match status with
        | Passed { wall; scalars; degraded; attempts } ->
            Some
              (C.entry ~experiment:name ~seed:config.seed
                 ~patterns:config.patterns ~wall_time:wall ~attempts
                 ~status:(if degraded then C.Degraded else C.Passed)
                 scalars)
        | Failed { wall; attempts; error } ->
            Some
              (C.entry ~experiment:name ~seed:config.seed
                 ~patterns:config.patterns ~wall_time:wall ~attempts
                 ~status:C.Failed ~error:(E.to_string error) [])
        | Skipped | Resumed _ -> None
      in
      (match updated with
      | None -> ()
      | Some en -> (
          manifest := C.add !manifest en;
          match C.save ~path !manifest with
          | Ok () ->
              if Jn.enabled () then
                Jn.emit ~level:Jn.Debug Jn.Checkpoint_written
                  [
                    ("path", path);
                    ("experiment", name);
                    ("entries", string_of_int (List.length !manifest.C.entries));
                  ]
          | Result.Error err ->
              Format.eprintf "harness: cannot checkpoint to %s: %a@." path
                E.pp err))

let initial_manifest config =
  match config.manifest_path with
  | Some path when config.resume && Sys.file_exists path -> (
      match C.load ~path with
      | Ok m -> m
      | Result.Error err ->
          (* A corrupt manifest must not poison the run: warn, start
             fresh, re-run everything. *)
          Format.eprintf
            "harness: ignoring unreadable manifest (%a); running from \
             scratch@."
            E.pp err;
          C.empty ~run_name:config.run_name)
  | _ -> C.empty ~run_name:config.run_name

let run_all ?(config = default_config) ppf entries =
  let manifest = ref (initial_manifest config) in
  let aborted = ref false in
  let results =
    List.map
      (fun e ->
        if !aborted then (e.name, Skipped)
        else
          match resumable config !manifest e.name with
          | Some en ->
              Format.fprintf ppf "@.=== %s: resumed from manifest (%s) ===@."
                e.name (C.status_name en.C.status);
              note_done e.name (Resumed en);
              (e.name, Resumed en)
          | None ->
              let status = run_one config ppf e in
              (match status with
              | Failed { error; _ } ->
                  Format.fprintf ppf "FAILED %s: %a@." e.name E.pp error;
                  if config.mode = Strict then aborted := true
              | _ -> ());
              note_done e.name status;
              checkpoint config manifest e.name status;
              (e.name, status))
      entries
  in
  { mode = config.mode; results; aborted = !aborted }

let failures s =
  List.filter_map
    (fun (name, st) ->
      match st with Failed { error; _ } -> Some (name, error) | _ -> None)
    s.results

let print_summary ppf s =
  Format.fprintf ppf "@.--- experiment summary ---@.";
  List.iter
    (fun (name, st) ->
      match st with
      | Passed { wall; degraded = false; _ } ->
          Format.fprintf ppf "ok      %-14s %6.1fs@." name wall
      | Passed { wall; degraded = true; attempts; _ } ->
          Format.fprintf ppf "ok      %-14s %6.1fs  (degraded, %d attempts)@."
            name wall attempts
      | Resumed en ->
          Format.fprintf ppf "resumed %-14s (manifest, %s)@." name
            (C.status_name en.C.status)
      | Failed { wall; error; _ } ->
          Format.fprintf ppf "FAILED  %-14s %6.1fs  %a@." name wall E.pp error
      | Skipped ->
          Format.fprintf ppf "skipped %-14s (strict mode abort)@." name)
    s.results;
  let count p = List.length (List.filter (fun (_, st) -> p st) s.results) in
  let failed = count (function Failed _ -> true | _ -> false) in
  let passed = count (function Passed _ -> true | _ -> false) in
  let resumed = count (function Resumed _ -> true | _ -> false) in
  let degraded =
    count (function Passed { degraded; _ } -> degraded | _ -> false)
  in
  let skipped = count (function Skipped -> true | _ -> false) in
  Format.fprintf ppf "%d passed, %d failed%s%s%s@." passed failed
    (if skipped > 0 then Printf.sprintf ", %d skipped" skipped else "")
    (if resumed > 0 then Printf.sprintf ", %d resumed" resumed else "")
    (if degraded > 0 then Printf.sprintf ", %d degraded" degraded else "")

let exit_status s =
  if failures s = [] then 0 else if s.aborted then 11 else 10
