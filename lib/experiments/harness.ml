module E = Runtime.Cnt_error

type mode = Keep_going | Strict

type status = Passed of float | Failed of float * E.t | Skipped

type entry = { name : string; doc : string; run : Format.formatter -> unit }

type summary = { mode : mode; results : (string * status) list; aborted : bool }

let entry name doc run = { name; doc; run }

let run_one ppf e =
  Format.fprintf ppf "@.=== %s: %s ===@." e.name e.doc;
  let t0 = Sys.time () in
  match E.protect ~stage:E.Experiment (fun () -> e.run ppf) with
  | Ok () -> Passed (Sys.time () -. t0)
  | Result.Error err ->
      let err = E.with_context err [ ("experiment", e.name) ] in
      Format.fprintf ppf "FAILED %s: %a@." e.name E.pp err;
      Failed (Sys.time () -. t0, err)

let run_all ~mode ppf entries =
  let aborted = ref false in
  let results =
    List.map
      (fun e ->
        if !aborted then (e.name, Skipped)
        else
          let status = run_one ppf e in
          (match (status, mode) with
          | Failed _, Strict -> aborted := true
          | _ -> ());
          (e.name, status))
      entries
  in
  { mode; results; aborted = !aborted }

let failures s =
  List.filter_map
    (fun (name, st) -> match st with Failed (_, e) -> Some (name, e) | _ -> None)
    s.results

let print_summary ppf s =
  Format.fprintf ppf "@.--- experiment summary ---@.";
  List.iter
    (fun (name, st) ->
      match st with
      | Passed dt -> Format.fprintf ppf "ok      %-14s %6.1fs@." name dt
      | Failed (dt, e) -> Format.fprintf ppf "FAILED  %-14s %6.1fs  %a@." name dt E.pp e
      | Skipped -> Format.fprintf ppf "skipped %-14s (strict mode abort)@." name)
    s.results;
  let failed = List.length (failures s) in
  let passed =
    List.length (List.filter (fun (_, st) -> match st with Passed _ -> true | _ -> false) s.results)
  in
  let skipped =
    List.length (List.filter (fun (_, st) -> st = Skipped) s.results)
  in
  Format.fprintf ppf "%d passed, %d failed%s@." passed failed
    (if skipped > 0 then Printf.sprintf ", %d skipped" skipped else "")

let exit_status s =
  if failures s = [] then 0 else if s.aborted then 11 else 10
