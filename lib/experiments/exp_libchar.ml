module C = Power.Characterize
module G = Cell.Genlib
module P = Power.Powermodel

type result = {
  generalized : C.library_char;
  conventional : C.library_char;
  cmos : C.library_char;
  saving_vs_cmos : float;
  saving_conv_vs_cmos : float;
  alpha_nand2 : float;
  alpha_nor2 : float;
  alpha_xor2 : float;
  pg_over_ps_cmos : float;
  pg_over_ps_cntfet : float;
  inv_cap_cntfet : float;
  inv_cap_cmos : float;
}

let run () =
  let generalized = C.characterize G.generalized_cntfet in
  let conventional = C.characterize G.conventional_cntfet in
  let cmos = C.characterize G.cmos in
  let alpha name = Power.Activity.gate_alpha (Cell.Cells.tt (Cell.Cells.find name)) in
  {
    generalized;
    conventional;
    cmos;
    saving_vs_cmos = C.compare_totals generalized cmos;
    saving_conv_vs_cmos = C.compare_totals conventional cmos;
    alpha_nand2 = alpha "NAND2";
    alpha_nor2 = alpha "NOR2";
    alpha_xor2 = alpha "XOR2";
    pg_over_ps_cmos = cmos.C.avg_gate_leak /. cmos.C.avg_static;
    pg_over_ps_cntfet = generalized.C.avg_gate_leak /. generalized.C.avg_static;
    inv_cap_cntfet = Spice.Tech.inverter_input_cap Spice.Tech.cntfet;
    inv_cap_cmos = Spice.Tech.inverter_input_cap Spice.Tech.cmos;
  }

let gate_rows (lc : C.library_char) =
  List.map
    (fun (g : C.gate_char) ->
      [|
        g.C.gate.G.cell.Cell.Cells.name;
        string_of_int g.C.gate.G.cell.Cell.Cells.pins;
        Report.f2 g.C.alpha;
        Report.f1 (g.C.area);
        Report.f3 (P.total g.C.power *. 1e9);
        Report.f3 (g.C.power.P.dynamic *. 1e9);
        Report.f3 (g.C.power.P.static *. 1e12);
        Report.f3 (g.C.power.P.gate_leak *. 1e12);
      |])
    lc.C.gates

let print ppf r =
  Report.render ppf
    {
      Report.title =
        "E2: generalized ambipolar CNTFET library characterization (per gate)";
      headers =
        [| "Gate"; "Pins"; "alpha"; "Area(T)"; "PT(nW)"; "PD(nW)"; "PS(pW)"; "PG(pW)" |];
      rows = gate_rows r.generalized;
    };
  Report.render ppf
    {
      Report.title = "E2: CMOS comparison library characterization (per gate)";
      headers =
        [| "Gate"; "Pins"; "alpha"; "Area(T)"; "PT(nW)"; "PD(nW)"; "PS(pW)"; "PG(pW)" |];
      rows = gate_rows r.cmos;
    };
  Format.fprintf ppf "Average total power: generalized CNTFET %.3g nW, CMOS %.3g nW@."
    (r.generalized.C.avg_total_power *. 1e9)
    (r.cmos.C.avg_total_power *. 1e9);
  Format.fprintf ppf "Per-cell saving of ambipolar library vs CMOS: %s (paper: 28%%)@."
    (Report.pct r.saving_vs_cmos);
  Format.fprintf ppf "Per-cell saving of conventional CNTFET vs CMOS: %s@."
    (Report.pct r.saving_conv_vs_cmos);
  Format.fprintf ppf
    "E4 activity factors: NAND2 %s, NOR2 %s, XOR2 %s (paper: 25%%, 25%%, 50%%)@."
    (Report.pct r.alpha_nand2) (Report.pct r.alpha_nor2) (Report.pct r.alpha_xor2);
  Format.fprintf ppf
    "E4 library-average alpha: generalized %.3f vs CMOS %.3f (paper: equal on average)@."
    r.generalized.C.avg_alpha r.cmos.C.avg_alpha;
  Format.fprintf ppf
    "E5 gate-leak share PG/PS: CMOS %s, CNTFET %s (paper: ~10%% vs <1%%)@."
    (Report.pct r.pg_over_ps_cmos)
    (Report.pct r.pg_over_ps_cntfet);
  Format.fprintf ppf
    "E6 inverter input capacitance: CNTFET %.0f aF vs CMOS %.0f aF (paper: 36 vs 52 aF)@."
    (r.inv_cap_cntfet *. 1e18) (r.inv_cap_cmos *. 1e18);
  Format.fprintf ppf
    "Static power ratio CMOS/CNTFET: %.1fx (paper: about one order of magnitude)@."
    (r.cmos.C.avg_static /. r.generalized.C.avg_static)

(* Key scalar outputs for the run manifest / golden regression gate.
   Capacitances are reported in aF so the exact-integer golden rule
   pins the paper's 36/52 aF claim precisely. *)
let scalars r =
  [
    ("saving_vs_cmos", r.saving_vs_cmos);
    ("saving_conv_vs_cmos", r.saving_conv_vs_cmos);
    ("alpha_nand2", r.alpha_nand2);
    ("alpha_nor2", r.alpha_nor2);
    ("alpha_xor2", r.alpha_xor2);
    ("pg_over_ps_cmos", r.pg_over_ps_cmos);
    ("pg_over_ps_cntfet", r.pg_over_ps_cntfet);
    ("inv_cap_cntfet_aF", r.inv_cap_cntfet *. 1e18);
    ("inv_cap_cmos_aF", r.inv_cap_cmos *. 1e18);
  ]
