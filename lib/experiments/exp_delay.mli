(** Experiment E9: the intrinsic-delay technology booster.

    Table 1 rests on the claim (taken by the paper from Deng et al. [10])
    that "the intrinsic CNTFET delay is 5x lower than the MOSFET delay".
    Here the claim is derived instead of assumed: the transient engine
    steps an inverter of each corner into its fanout-3 characterization
    load and measures the 50 %-crossing propagation delay, which is then
    compared with the per-stage tau used by the genlib timing model. *)

type result = {
  cmos_delay : float;  (** measured, s *)
  cntfet_delay : float;  (** measured, s *)
  ratio : float;
  cmos_tau : float;  (** the genlib timing parameter *)
  cntfet_tau : float;
}

val run : unit -> result
val print : Format.formatter -> result -> unit

val scalars : result -> (string * float) list
(** Manifest scalars: the intrinsic delay ratio and both measured delays. *)
