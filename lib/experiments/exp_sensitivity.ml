module T = Spice.Tech
module C = Power.Characterize

type vdd_point = {
  vdd : float;
  avg_gate_power_cnt : float;
  avg_gate_power_cmos : float;
  inv_delay_cnt : float;
  inv_delay_cmos : float;
}

type temp_point = { kelvin : float; ioff_cnt : float; ioff_cmos : float }

type mc_summary = {
  samples : int;
  sigma_vth : float;
  nominal : float;
  mean : float;
  std : float;
  p95 : float;
}

type result = {
  vdd_sweep : vdd_point list;
  temp_sweep : temp_point list;
  mc_cnt : mc_summary;
  mc_cmos : mc_summary;
}

let avg_power lib = (C.characterize lib).C.avg_total_power

let vdd_sweep () =
  List.map
    (fun vdd ->
      let cnt = T.with_vdd T.cntfet vdd in
      let cmos = T.with_vdd T.cmos vdd in
      {
        vdd;
        avg_gate_power_cnt =
          avg_power (Cell.Genlib.with_tech Cell.Genlib.generalized_cntfet cnt);
        avg_gate_power_cmos = avg_power (Cell.Genlib.with_tech Cell.Genlib.cmos cmos);
        inv_delay_cnt = Spice.Transient.inverter_delay cnt;
        inv_delay_cmos = Spice.Transient.inverter_delay cmos;
      })
    [ 0.6; 0.7; 0.8; 0.9; 1.0 ]

let temp_sweep () =
  List.map
    (fun kelvin ->
      let unit tech =
        Power.Leakage.pattern_ioff (T.with_temperature tech ~kelvin) (Power.Pattern.Unit 1)
      in
      { kelvin; ioff_cnt = unit T.cntfet; ioff_cmos = unit T.cmos })
    [ 250.0; 300.0; 350.0; 400.0 ]

(* Box-Muller Gaussian from the deterministic PRNG. *)
let gaussian rng sigma =
  let u1 = max 1e-12 (Logic.Prng.float rng) in
  let u2 = Logic.Prng.float rng in
  sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let monte_carlo ?(samples = 2000) ?(sigma = 0.03) tech =
  let rng = Logic.Prng.create 777L in
  let unit_off t =
    Spice.Device.ids (Spice.Device.Nmos t) ~vg:0.0 ~vd:t.T.vdd ~vs:0.0 ~vpg:0.0
  in
  let nominal = unit_off tech in
  let values =
    Array.init samples (fun _ -> unit_off (T.with_vth_shift tech (gaussian rng sigma)))
  in
  Array.sort compare values;
  let mean = Array.fold_left ( +. ) 0.0 values /. float_of_int samples in
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
    /. float_of_int samples
  in
  {
    samples;
    sigma_vth = sigma;
    nominal;
    mean;
    std = sqrt var;
    p95 = values.(int_of_float (0.95 *. float_of_int samples));
  }

let run ?(mc_samples = 2000) () =
  {
    vdd_sweep = vdd_sweep ();
    temp_sweep = temp_sweep ();
    mc_cnt = monte_carlo ~samples:mc_samples T.cntfet;
    mc_cmos = monte_carlo ~samples:mc_samples T.cmos;
  }

let print ppf r =
  Report.render ppf
    {
      Report.title =
        "E13 (extension): supply sweep — library-average gate power and inverter delay";
      headers =
        [| "Vdd (V)"; "CNT PT (nW)"; "CMOS PT (nW)"; "CNT delay (ps)"; "CMOS delay (ps)" |];
      rows =
        List.map
          (fun p ->
            [|
              Report.f2 p.vdd;
              Report.f2 (p.avg_gate_power_cnt *. 1e9);
              Report.f2 (p.avg_gate_power_cmos *. 1e9);
              Report.f2 (p.inv_delay_cnt *. 1e12);
              Report.f2 (p.inv_delay_cmos *. 1e12);
            |])
          r.vdd_sweep;
    };
  Report.render ppf
    {
      Report.title = "E14 (extension): temperature sweep — unit device off-current";
      headers = [| "T (K)"; "CNTFET Ioff (nA)"; "CMOS Ioff (nA)"; "ratio" |];
      rows =
        List.map
          (fun p ->
            [|
              Report.f1 p.kelvin;
              Report.f3 (p.ioff_cnt *. 1e9);
              Report.f3 (p.ioff_cmos *. 1e9);
              Report.times (p.ioff_cmos /. p.ioff_cnt);
            |])
          r.temp_sweep;
    };
  Report.render ppf
    {
      Report.title =
        Printf.sprintf
          "E15 (extension): Monte-Carlo Ioff under %.0f mV Vth sigma (%d samples)"
          (r.mc_cnt.sigma_vth *. 1e3) r.mc_cnt.samples;
      headers = [| "Corner"; "Nominal (nA)"; "Mean (nA)"; "Std (nA)"; "95th pct (nA)" |];
      rows =
        [
          [|
            "cntfet-32nm";
            Report.f3 (r.mc_cnt.nominal *. 1e9);
            Report.f3 (r.mc_cnt.mean *. 1e9);
            Report.f3 (r.mc_cnt.std *. 1e9);
            Report.f3 (r.mc_cnt.p95 *. 1e9);
          |];
          [|
            "cmos-32nm";
            Report.f3 (r.mc_cmos.nominal *. 1e9);
            Report.f3 (r.mc_cmos.mean *. 1e9);
            Report.f3 (r.mc_cmos.std *. 1e9);
            Report.f3 (r.mc_cmos.p95 *. 1e9);
          |];
        ];
    };
  Format.fprintf ppf
    "Exponential Vth sensitivity skews the leakage distribution: the mean exceeds the nominal@.";
  Format.fprintf ppf
    "for both corners, but CNTFET leakage stays an order of magnitude below CMOS across@.";
  Format.fprintf ppf "supply, temperature and variation — the paper's static-power story is robust.@."

let scalars r =
  [
    ("vdd_points", float_of_int (List.length r.vdd_sweep));
    ("temp_points", float_of_int (List.length r.temp_sweep));
    ("mc_cnt_mean_over_nominal", r.mc_cnt.mean /. r.mc_cnt.nominal);
    ("mc_cnt_p95_over_mean", r.mc_cnt.p95 /. r.mc_cnt.mean);
    ("mc_cmos_mean_over_nominal", r.mc_cmos.mean /. r.mc_cmos.nominal);
  ]
