module P = Power.Pattern
module L = Power.Leakage

type result = {
  patterns : (P.t * float * float) list;
  nor3_parallel : float;
  nor3_series : float;
  nor3_same_pattern_vectors : (int * int) list;
  total_vectors : int;
  dc_solves : int;
  cache_hits : int;
}

let run () =
  (* This experiment measures solver work (dc_solves is golden-gated), so
     the cache must be genuinely cold: disk-backed entries would turn
     solves into hits and break the A1 collapse measurement. *)
  let was_persistent = L.persistent () in
  L.set_persistent false;
  L.clear_cache ();
  let census = Power.Characterize.pattern_census_all () in
  let patterns =
    List.map
      (fun p ->
        (p, L.pattern_ioff Spice.Tech.cntfet p, L.pattern_ioff Spice.Tech.cmos p))
      census
  in
  (* Count how many (gate, vector) pairs the classification collapses. *)
  let total_vectors =
    List.fold_left
      (fun acc (c : Cell.Cells.t) ->
        acc + (1 lsl c.Cell.Cells.pins)
        + match c.Cell.Cells.static with Some _ -> 1 lsl c.Cell.Cells.pins | None -> 0)
      0 Cell.Cells.all
  in
  let census_stats = L.cache_stats () in
  (* Re-characterize every (gate, vector) pair through the cache: the
     census above already solved each distinct pattern, so this sweep is
     pure hits — the measured collapse A1 claims. *)
  List.iter
    (fun (c : Cell.Cells.t) ->
      let sweep impl =
        let gp = P.analyze impl ~pins:c.Cell.Cells.pins in
        ignore (L.gate_ioff Spice.Tech.cntfet gp)
      in
      sweep c.Cell.Cells.ambipolar;
      Option.iter sweep c.Cell.Cells.static)
    Cell.Cells.all;
  (* NOR3, Fig. 4: input 000 leaves the three pull-down devices off in
     parallel; input 111 leaves the pull-up stack off in series. *)
  let nor3 = Cell.Cells.find "NOR3" in
  let gp = P.analyze nor3.Cell.Cells.ambipolar ~pins:3 in
  let ioff = L.gate_ioff Spice.Tech.cntfet gp in
  let final_stats = L.cache_stats () in
  let same =
    let pairs = ref [] in
    for v = 0 to 6 do
      for w = v + 1 to 7 do
        if P.equal gp.P.off_pattern.(v) gp.P.off_pattern.(w) then pairs := (v, w) :: !pairs
      done
    done;
    List.rev !pairs
  in
  L.set_persistent was_persistent;
  {
    patterns;
    nor3_parallel = ioff.(0);
    nor3_series = ioff.(7);
    nor3_same_pattern_vectors = same;
    total_vectors;
    dc_solves = census_stats.L.misses;
    cache_hits = final_stats.L.hits;
  }

let print ppf r =
  Report.render ppf
    {
      Report.title =
        Printf.sprintf "E3: I_off pattern census — %d distinct patterns (paper: 26)"
          (List.length r.patterns);
      headers = [| "Pattern"; "Ioff CNTFET (nA)"; "Ioff CMOS (nA)" |];
      rows =
        List.map
          (fun (p, icnt, icmos) ->
            [| Format.asprintf "%a" P.pp p; Report.f3 (icnt *. 1e9); Report.f3 (icmos *. 1e9) |])
          r.patterns;
    };
  Format.fprintf ppf
    "A1: %d gate-vector combinations collapsed into %d DC solves (%.0fx fewer simulations)@."
    r.total_vectors r.dc_solves
    (float_of_int r.total_vectors /. float_of_int (max 1 r.dc_solves));
  Format.fprintf ppf
    "A1: leakage cache: %d hits / %d solves (hit ratio %.1f%%)@." r.cache_hits
    r.dc_solves
    (100.0
    *. float_of_int r.cache_hits
    /. float_of_int (max 1 (r.cache_hits + r.dc_solves)));
  Format.fprintf ppf
    "E8 / Fig. 4 (NOR3): Ioff[000] = %.3g nA (parallel), Ioff[111] = %.3g nA (series): ratio %.1fx (paper: >3x)@."
    (r.nor3_parallel *. 1e9) (r.nor3_series *. 1e9)
    (r.nor3_parallel /. r.nor3_series);
  let pp_pair ppf (v, w) = Format.fprintf ppf "[%d%d%d]=[%d%d%d]" (v land 1) ((v lsr 1) land 1) ((v lsr 2) land 1) (w land 1) ((w lsr 1) land 1) ((w lsr 2) land 1) in
  Format.fprintf ppf "E8: NOR3 input vectors sharing a pattern: %a@."
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_pair)
    r.nor3_same_pattern_vectors

let scalars r =
  [
    ("n_patterns", float_of_int (List.length r.patterns));
    ("nor3_parallel_over_series", r.nor3_parallel /. r.nor3_series);
    ("shared_pattern_pairs", float_of_int (List.length r.nor3_same_pattern_vectors));
    ("total_vectors", float_of_int r.total_vectors);
    ("dc_solves", float_of_int r.dc_solves);
    ("cache_hits", float_of_int r.cache_hits);
  ]
