module S = Techmap.Seqmap

type row = { library : string; report : S.report }

let run ?(data_width = 8) ?(cycles = 10_000) () =
  List.map
    (fun lib ->
      let ml = Techmap.Matchlib.build lib in
      let seq = Circuits.Crc.generate ~data_width () in
      { library = lib.Cell.Genlib.name; report = S.estimate ~cycles ml seq })
    (Cell.Genlib.libraries ())

let print ppf rows =
  Report.render ppf
    {
      Report.title =
        "E12 (extension): clocked CRC-32 engine (8 bits/cycle), registers and clock included";
      headers =
        [|
          "Library"; "Gates"; "Regs"; "Area (T)"; "Min period (ps)"; "Fmax (GHz)";
          "Comb (uW)"; "Clock (uW)"; "Regs (uW)"; "Total (uW)"; "E/cycle (fJ)";
        |];
      rows =
        List.map
          (fun r ->
            let p = r.report in
            [|
              r.library;
              string_of_int p.S.gates;
              string_of_int p.S.registers;
              Report.f1 (p.S.comb_area +. p.S.reg_area);
              Report.f1 (p.S.min_period *. 1e12);
              Report.f2 (1.0 /. p.S.min_period /. 1e9);
              Report.f2 (p.S.comb_power.Techmap.Estimate.total *. 1e6);
              Report.f2 (p.S.clock_power *. 1e6);
              Report.f2 ((p.S.reg_internal_power +. p.S.reg_leak_power) *. 1e6);
              Report.f2 (p.S.total *. 1e6);
              Report.f2 (p.S.epc *. 1e15);
            |])
          rows;
    };
  match
    ( List.find_opt (fun r -> r.library = "cntfet-generalized") rows,
      List.find_opt (fun r -> r.library = "cmos") rows )
  with
  | Some gen, Some cmos ->
      Format.fprintf ppf
        "Generalized ambipolar vs CMOS with the clock running: %s less energy per cycle, %s higher Fmax.@."
        (Report.pct (1.0 -. (gen.report.S.epc /. cmos.report.S.epc)))
        (Report.times (cmos.report.S.min_period /. gen.report.S.min_period))
  | _ -> ()

let scalars rows =
  List.concat_map
    (fun r ->
      [
        (r.library ^ ".gates", float_of_int r.report.Techmap.Seqmap.gates);
        (r.library ^ ".epc_fJ", r.report.Techmap.Seqmap.epc *. 1e15);
        (r.library ^ ".clock_power_uW", r.report.Techmap.Seqmap.clock_power *. 1e6);
      ])
    rows
