(** Experiment E2: library characterization for power (Section 4, first
    half) — per-gate power breakdown of the generalized ambipolar CNTFET
    library against the CMOS library, the 28 %-average-saving headline, and
    the supporting claims E4 (activity factors), E5 (gate-leak share) and
    E6 (inverter input capacitance). *)

type result = {
  generalized : Power.Characterize.library_char;
  conventional : Power.Characterize.library_char;
  cmos : Power.Characterize.library_char;
  saving_vs_cmos : float;  (** mean per-cell total-power saving, shared cells *)
  saving_conv_vs_cmos : float;
  alpha_nand2 : float;
  alpha_nor2 : float;
  alpha_xor2 : float;
  pg_over_ps_cmos : float;
  pg_over_ps_cntfet : float;
  inv_cap_cntfet : float;
  inv_cap_cmos : float;
}

val run : unit -> result
val print : Format.formatter -> result -> unit

val scalars : result -> (string * float) list
(** Manifest scalars for the golden gate (savings, alphas, PG/PS shares,
    inverter capacitances in aF). *)
