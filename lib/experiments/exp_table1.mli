(** Experiment E1: Table 1 — logic synthesis and technology mapping of the
    12-circuit suite with the three libraries, followed by random-pattern
    power estimation.

    Flow per circuit (Section 4 of the paper): generate -> AIG ->
    resyn2rs-like optimization -> map with each genlib -> estimate power
    with random patterns at f = 1 GHz, V_DD = 0.9 V. Every mapped netlist
    is co-simulated against the generated reference before being reported. *)

type row = {
  name : string;
  description : string;
  results : (string * Techmap.Estimate.report) list;
      (** keyed by library name, in {!Cell.Genlib.libraries} order
          (built-ins in Table 1 column order, then registered families) *)
}

type summary = {
  rows : row list;
  averages : (string * Techmap.Estimate.report) list;  (** arithmetic means *)
  improvement_vs_cmos : (string * (string * float) list) list;
      (** per non-CMOS library: metric name -> ratio or saving *)
}

val run :
  ?patterns:int ->
  ?seed:int64 ->
  ?circuits:Circuits.Suite.entry list ->
  ?verify:bool ->
  unit ->
  summary
(** Defaults: 640 K patterns, estimation seed 42, the full 12-circuit
    suite, with verification. Raises [Failure] if a mapped netlist fails
    co-simulation. *)

val print : Format.formatter -> summary -> unit
(** Render the Table-1-shaped report (gate count, delay, P_D, P_S, P_T, EDP
    per library, plus the average and improvement rows). *)

val scalars : summary -> (string * float) list
(** Manifest scalars: per-library averages ([<lib>.total_uW], ...) and the
    improvement-vs-CMOS metrics ([<lib>.vs_cmos.pt], ...). *)
