module N = Nets.Netlist

type row = {
  name : string;
  inputs : int;
  outputs : int;
  terms : int;
  literals : int;
  ambipolar_transistors : int;
  cmos_transistors : int;
  cmos_inverters : int;
  stdcell_gates : int;
  stdcell_area : float;
}

(* Control-style testcases: decoders, priority logic, seeded cube logic. *)
let decoder_case () =
  let nl = N.create () in
  let sel = Circuits.Arith.input_bus nl "s" 3 in
  let hot = Circuits.Arith.decoder nl sel in
  Array.iteri (fun i id -> N.add_output nl (Printf.sprintf "d%d" i) id) hot;
  ("decode3", nl)

let priority_case () =
  (* 8-input priority encoder: 3-bit index of the highest set request. *)
  let nl = N.create () in
  let req = Circuits.Arith.input_bus nl "r" 8 in
  let none_higher i =
    if i = 7 then None
    else
      Some
        (Circuits.Arith.and_tree nl
           (Array.init (7 - i) (fun j -> N.add_node nl N.Not [| req.(i + 1 + j) |])))
  in
  let grant =
    Array.init 8 (fun i ->
        match none_higher i with
        | None -> req.(i)
        | Some above -> N.add_node nl N.And [| req.(i); above |])
  in
  for bit = 0 to 2 do
    let contributors =
      Array.to_list grant
      |> List.filteri (fun i _ -> (i lsr bit) land 1 = 1)
      |> Array.of_list
    in
    N.add_output nl (Printf.sprintf "idx%d" bit) (Circuits.Arith.or_tree nl contributors)
  done;
  N.add_output nl "any" (Circuits.Arith.or_tree nl req);
  ("prio8", nl)

let random_control_case () =
  let nl =
    Circuits.Randlogic.generate ~inputs:10 ~gates:120 ~outputs:6 ~xor_fraction:0.05
      ~seed:1111L ()
  in
  ("ctrl10", nl)

let run () =
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  List.map
    (fun (name, nl) ->
      let p = Pla.of_netlist nl in
      if not (Pla.check_against p nl) then failwith ("E11: PLA mismatch for " ^ name);
      let amb = Pla.ambipolar_cost p and cmos = Pla.cmos_cost p in
      let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
      let mapped = Techmap.Mapper.map ml aig in
      {
        name;
        inputs = p.Pla.num_inputs;
        outputs = p.Pla.num_outputs;
        terms = Pla.num_terms p;
        literals = Pla.num_literals p;
        ambipolar_transistors = amb.Pla.transistors;
        cmos_transistors = cmos.Pla.transistors;
        cmos_inverters = cmos.Pla.input_inverters;
        stdcell_gates = Techmap.Mapped.num_gates mapped;
        stdcell_area = Techmap.Mapped.area mapped;
      })
    [ decoder_case (); priority_case (); random_control_case () ]

let print ppf rows =
  Report.render ppf
    {
      Report.title =
        "E11 (extension): ambipolar in-field programmable PLAs vs CMOS PLAs vs standard cells";
      headers =
        [|
          "Circuit"; "In"; "Out"; "Terms"; "Lits"; "Ambi PLA (T)"; "CMOS PLA (T)";
          "CMOS invs"; "StdCell gates"; "StdCell area (T)";
        |];
      rows =
        List.map
          (fun r ->
            [|
              r.name;
              string_of_int r.inputs;
              string_of_int r.outputs;
              string_of_int r.terms;
              string_of_int r.literals;
              string_of_int r.ambipolar_transistors;
              string_of_int r.cmos_transistors;
              string_of_int r.cmos_inverters;
              string_of_int r.stdcell_gates;
              Report.f1 r.stdcell_area;
            |])
          rows;
    };
  Format.fprintf ppf
    "The ambipolar arrays drop every complement input column and stay reprogrammable in the field [6].@."

let scalars rows =
  let sum f = float_of_int (List.fold_left (fun acc r -> acc + f r) 0 rows) in
  [
    ("n_functions", float_of_int (List.length rows));
    ("ambipolar_transistors_total", sum (fun r -> r.ambipolar_transistors));
    ("cmos_transistors_total", sum (fun r -> r.cmos_transistors));
    ("stdcell_gates_total", sum (fun r -> r.stdcell_gates));
  ]
