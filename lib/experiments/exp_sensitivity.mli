(** Experiments E13-E15 (extensions): sensitivity of the paper's
    conclusions to operating point and process variation.

    The paper fixes V_DD = 0.9 V, room temperature, and nominal devices,
    and itself notes that "more accurate results will require the
    utilization of a better device model". These studies exercise the
    model's knobs:

    E13 — supply sweep: per-gate average total power of the generalized
    library and transient inverter delay at each V_DD; the energy-delay
    trade as supply scales, for both corners.

    E14 — temperature sweep: unit off-currents (and hence static power)
    versus temperature; the CNTFET's steeper subthreshold slope makes its
    leakage grow faster in relative terms but it stays an order of
    magnitude below CMOS across the range.

    E15 — Monte-Carlo threshold variation: off-current distribution under
    Gaussian V_th jitter (CNT diameter variation); reports mean, standard
    deviation and the 95th percentile against the nominal value. *)

type vdd_point = {
  vdd : float;
  avg_gate_power_cnt : float;  (** W, generalized library average *)
  avg_gate_power_cmos : float;
  inv_delay_cnt : float;  (** s, transient-measured *)
  inv_delay_cmos : float;
}

type temp_point = {
  kelvin : float;
  ioff_cnt : float;  (** A, unit device *)
  ioff_cmos : float;
}

type mc_summary = {
  samples : int;
  sigma_vth : float;  (** V *)
  nominal : float;  (** A *)
  mean : float;
  std : float;
  p95 : float;
}

type result = {
  vdd_sweep : vdd_point list;
  temp_sweep : temp_point list;
  mc_cnt : mc_summary;
  mc_cmos : mc_summary;
}

val run : ?mc_samples:int -> unit -> result
val print : Format.formatter -> result -> unit

val scalars : result -> (string * float) list
(** Manifest scalars: sweep sizes and Monte-Carlo distribution ratios. *)
