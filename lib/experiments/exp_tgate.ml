module C = Spice.Circuit
module D = Spice.Device
module T = Spice.Tech

type config = { a : bool; b : bool; vin : float; vout : float; passing : bool }

let solve ~a ~b ~vin =
  let vdd = T.cntfet.T.vdd in
  let volt x = if x then vdd else 0.0 in
  let c = C.create () in
  let src = C.node c "src" and out = C.node c "out" in
  let na = C.node c "a" and nna = C.node c "na" in
  let nb = C.node c "b" and nnb = C.node c "nb" in
  C.add_vsource c src vin;
  C.add_vsource c na (volt a);
  C.add_vsource c nna (volt (not a));
  C.add_vsource c nb (volt b);
  C.add_vsource c nnb (volt (not b));
  C.add_transistor c (D.Ambipolar T.cntfet) ~d:src ~g:nb ~s:out ~pg:na ();
  C.add_transistor c (D.Ambipolar T.cntfet) ~d:src ~g:nnb ~s:out ~pg:nna ();
  (* Weak load keeping the blocked output defined. *)
  C.add_resistor c out C.ground 1.0e8;
  let sol = C.solve c in
  C.node_voltage sol out

let run () =
  let vdd = T.cntfet.T.vdd in
  List.concat_map
    (fun (a, b) ->
      List.map
        (fun vin -> { a; b; vin; vout = solve ~a ~b ~vin; passing = a <> b })
        [ 0.0; vdd ])
    [ (false, false); (false, true); (true, false); (true, true) ]

let print ppf configs =
  Report.render ppf
    {
      Report.title = "E7 / Fig. 2: ambipolar transmission gate transfer";
      headers = [| "A"; "B"; "A^B"; "Vin (V)"; "Vout (V)"; "verdict" |];
      rows =
        List.map
          (fun c ->
            let verdict =
              if c.passing then
                if abs_float (c.vout -. c.vin) < 0.05 then "good transmission"
                else "DEGRADED"
              else "blocked"
            in
            [|
              (if c.a then "1" else "0");
              (if c.b then "1" else "0");
              (if c.passing then "1" else "0");
              Report.f2 c.vin;
              Report.f3 c.vout;
              verdict;
            |])
          configs;
    }

let scalars configs =
  let passing = List.filter (fun c -> c.passing) configs in
  let max_drop =
    List.fold_left
      (fun acc c -> Float.max acc (Float.abs (c.vout -. c.vin)))
      0.0 passing
  in
  [
    ("n_configs", float_of_int (List.length configs));
    ("n_passing", float_of_int (List.length passing));
    ("max_passing_drop_mV", max_drop *. 1e3);
  ]
