type result = {
  cmos_delay : float;
  cntfet_delay : float;
  ratio : float;
  cmos_tau : float;
  cntfet_tau : float;
}

let run () =
  let cmos_delay = Spice.Transient.inverter_delay Spice.Tech.cmos in
  let cntfet_delay = Spice.Transient.inverter_delay Spice.Tech.cntfet in
  {
    cmos_delay;
    cntfet_delay;
    ratio = cmos_delay /. cntfet_delay;
    cmos_tau = Spice.Tech.cmos.Spice.Tech.tau;
    cntfet_tau = Spice.Tech.cntfet.Spice.Tech.tau;
  }

let print ppf r =
  Report.render ppf
    {
      Report.title = "E9: intrinsic inverter delay from transient analysis";
      headers = [| "Corner"; "Measured (ps)"; "Genlib tau (ps)" |];
      rows =
        [
          [| "cmos-32nm"; Report.f2 (r.cmos_delay *. 1e12); Report.f2 (r.cmos_tau *. 1e12) |];
          [|
            "cntfet-32nm";
            Report.f2 (r.cntfet_delay *. 1e12);
            Report.f2 (r.cntfet_tau *. 1e12);
          |];
        ];
    };
  Format.fprintf ppf
    "Measured MOSFET/CNTFET intrinsic delay ratio: %.2fx (paper, citing Deng et al.: 5x)@."
    r.ratio

let scalars r =
  [
    ("ratio", r.ratio);
    ("cmos_delay_ps", r.cmos_delay *. 1e12);
    ("cntfet_delay_ps", r.cntfet_delay *. 1e12);
  ]
