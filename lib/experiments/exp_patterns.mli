(** Experiments E3 and E8: the I_off pattern census ("26 different
    patterns") and the NOR3 pattern-reduction example of Fig. 4, plus the
    A1 ablation (classification vs brute-force: how many DC solves the
    classification saves). *)

type result = {
  patterns : (Power.Pattern.t * float * float) list;
      (** pattern, I_off in the CNTFET corner, I_off in the CMOS corner *)
  nor3_parallel : float;  (** leakage at input 000 (three parallel offs) *)
  nor3_series : float;  (** leakage at input 111 (series stack) *)
  nor3_same_pattern_vectors : (int * int) list;
      (** pairs of distinct input vectors sharing an I_off pattern *)
  total_vectors : int;  (** gate-vector pairs examined across the library *)
  dc_solves : int;  (** circuit simulations actually performed (census) *)
  cache_hits : int;
      (** leakage-cache hits across the full per-gate re-characterization
          sweep — the solves the classification avoided *)
}

val run : unit -> result
val print : Format.formatter -> result -> unit

val scalars : result -> (string * float) list
(** Manifest scalars: pattern count (the paper's 26), NOR3 leakage ratio,
    census sizes. *)
