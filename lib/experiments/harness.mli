(** Isolated experiment execution with failure collection.

    [cntpower all] runs every experiment through this harness: each
    experiment executes in isolation, any escaping exception is converted
    to a typed {!Runtime.Cnt_error.t}, and a final summary reports which
    experiments passed, which failed and why. In [Keep_going] mode (the
    default) a failure does not stop the remaining experiments; in
    [Strict] mode the run aborts at the first failure. *)

type mode = Keep_going | Strict

type status =
  | Passed of float  (** CPU seconds *)
  | Failed of float * Runtime.Cnt_error.t
  | Skipped  (** not run because a [Strict] run aborted earlier *)

type entry = { name : string; doc : string; run : Format.formatter -> unit }

type summary = { mode : mode; results : (string * status) list; aborted : bool }

val entry : string -> string -> (Format.formatter -> unit) -> entry

val run_all : mode:mode -> Format.formatter -> entry list -> summary
(** Announces each experiment on [ppf], runs it, and records the outcome.
    Never raises: failures (including [Failure]/[Invalid_argument] from
    unhardened code paths) are captured as typed errors. *)

val failures : summary -> (string * Runtime.Cnt_error.t) list

val print_summary : Format.formatter -> summary -> unit
(** One line per experiment plus a pass/fail count; failed experiments show
    their stage/code and context. *)

val exit_status : summary -> int
(** [0] all passed; [10] completed with failures ([Keep_going]); [11]
    aborted at the first failure ([Strict]). *)
