(** Supervised experiment execution with failure collection, durable
    checkpoints and resume.

    [cntpower all] runs every experiment through this harness. Each
    experiment executes in a forked worker under
    {!Runtime.Supervisor.run}: a crash (signal, OOM kill, nonzero exit)
    or a wall-clock timeout is reaped by the supervisor, converted to a
    typed {!Runtime.Cnt_error.t} ([Worker_killed] / [Worker_timeout]) and
    retried once in *degraded* mode (the entry sees [~degraded:true] and
    is expected to shed load, e.g. halve its pattern count). With
    [policy = None] entries run in-process, which is what the unit tests
    use and what [--no-supervise] selects.

    When a manifest path is configured, the harness persists a
    {!Runtime.Checkpoint.manifest} entry after every experiment —
    completed work survives a mid-run kill — and with [resume = true]
    entries already recorded as passed (same seed and pattern count) are
    skipped as [Resumed].

    In [Keep_going] mode (the default) a failure does not stop the
    remaining experiments; in [Strict] mode the run aborts at the first
    failure. *)

type mode = Keep_going | Strict

type status =
  | Passed of {
      wall : float;  (** wall-clock seconds, all attempts *)
      scalars : (string * float) list;
      degraded : bool;  (** result came from the degraded retry *)
      attempts : int;
    }
  | Failed of { wall : float; attempts : int; error : Runtime.Cnt_error.t }
  | Skipped  (** not run because a [Strict] run aborted earlier *)
  | Resumed of Runtime.Checkpoint.entry
      (** skipped: the manifest already holds a passing result *)

type entry = {
  name : string;
  doc : string;
  run : degraded:bool -> Format.formatter -> (string * float) list;
      (** Runs the experiment, printing its report to the formatter, and
          returns the scalar outputs recorded in the manifest. Must not
          capture non-marshallable state in its return value. *)
}

type config = {
  mode : mode;
  policy : Runtime.Supervisor.policy option;
      (** [None]: in-process, no isolation (unit tests, [--no-supervise]) *)
  run_name : string;
  manifest_path : string option;  (** persist after every entry *)
  resume : bool;
  seed : int64;  (** recorded per entry; part of the resume key *)
  patterns : int;  (** recorded per entry; part of the resume key *)
}

val default_config : config
(** [Keep_going], in-process, no manifest, run name ["all"], seed 42,
    the paper's 640 K patterns. *)

val entry :
  string ->
  string ->
  (degraded:bool -> Format.formatter -> (string * float) list) ->
  entry

type summary = { mode : mode; results : (string * status) list; aborted : bool }

val run_all : ?config:config -> Format.formatter -> entry list -> summary
(** Announces each experiment on the formatter, runs it under the
    configured supervision, checkpoints the outcome, and records it.
    Never raises: failures (including [Failure]/[Invalid_argument] from
    unhardened code paths, worker death and watchdog timeouts) are
    captured as typed errors. *)

val failures : summary -> (string * Runtime.Cnt_error.t) list

val print_summary : Format.formatter -> summary -> unit
(** One line per experiment plus a pass/fail count; failed experiments show
    their stage/code and context, degraded passes are flagged. *)

val exit_status : summary -> int
(** [0] all passed (resumed and degraded entries count as passed); [10]
    completed with failures ([Keep_going]); [11] aborted at the first
    failure ([Strict]). *)
