(** Experiment E11 (extension): in-field programmable ambipolar PLAs.

    The paper's reference [6] motivates ambipolar CNTFETs as the core of
    reprogrammable PLAs: every array device's polarity gate is a
    configuration input, so the complement input columns of a classic
    NOR-NOR PLA disappear and the dies are field-reprogrammable. This
    experiment collapses a set of control-style functions to two-level
    form (Espresso-style minimization), costs the ambipolar and CMOS PLA
    realizations, and compares against multi-level standard-cell mapping
    with the generalized library. *)

type row = {
  name : string;
  inputs : int;
  outputs : int;
  terms : int;
  literals : int;
  ambipolar_transistors : int;
  cmos_transistors : int;
  cmos_inverters : int;
  stdcell_gates : int;
  stdcell_area : float;  (** transistors, generalized library mapping *)
}

val run : unit -> row list
val print : Format.formatter -> row list -> unit

val scalars : row list -> (string * float) list
(** Manifest scalars: transistor totals for the ambipolar and CMOS arrays. *)
