(** Durable sweep campaigns: the scale-out counterpart of the supervised
    harness.

    A campaign decomposes the paper's battery into independent shards —
    one (circuit × library × seed) cell each — and drives them through
    the {!Runtime.Supervisor} forked-worker pool under a durable
    {!Runtime.Workqueue} log at [_runs/<campaign>/queue.jsonl]. Every
    transition (enqueued / leased / done / failed / quarantined) is one
    crash-safe flushed line, so the campaign survives:

    - {b worker death}: the attempt is recorded [failed] and the shard
      retried with exponential backoff, up to [max_attempts];
    - {b poison shards}: after [max_attempts] failures the shard is
      [quarantined] ({!Runtime.Cnt_error.Shard_quarantined}) and the
      campaign continues degraded — healthy shards still produce
      results, and the summary lists what was set aside;
    - {b coordinator SIGKILL}: [done] records carry the result scalars,
      so [run] with [resume = true] reclaims stale leases (dead owner or
      expired timestamp), rebuilds missing manifest entries from the
      log, and re-runs only shards not recorded [done].

    Results stream into an incremental {!Runtime.Checkpoint} manifest
    ([manifest.json], one entry per shard, written after every
    completion) and a merged telemetry profile, so [cntpower
    stats/trace/compare] work on a half-finished campaign.

    Each shard attempt set mints a {!Runtime.Tracectx}: the lease and
    outcome records, the worker's journal events and its telemetry
    subtree (under [campaign/shard/trace:<id>]) share one trace id, so
    [cntpower trace --request <id>] slices a single shard. The
    coordinator also keeps [_runs/<campaign>/metrics.json] fresh — an
    atomic {!Runtime.Metrics} snapshot rewritten after every state
    change, the [cntpower top <campaign>] data source. *)

type shard = {
  sh_id : string;  (** ["<circuit>/<library>/<seed>"] *)
  sh_circuit : string;
  sh_library : string;
  sh_seed : int64;
}

(** Deterministic fault injection, for tests and the CI resilience job.
    Shards match by full id or by circuit name. *)
type inject = {
  inj_crash : string list;  (** SIGKILL the worker on every attempt *)
  inj_flaky : string list;  (** SIGKILL the worker on the first attempt only *)
  inj_hang : string list;  (** sleep past the shard deadline *)
  inj_kill_after : int option;
      (** SIGKILL the {e coordinator} right after the Nth [done] record
          of this run hits the queue log — before the manifest write, the
          worst-timed crash resume must recover from *)
}

val no_inject : inject

type config = {
  campaign : string;  (** run name; directory under [runs_dir] *)
  runs_dir : string;  (** parent directory, normally ["_runs"] *)
  circuits : Circuits.Suite.entry list;
  libraries : Cell.Genlib.t list;
  seeds : int64 list;
  patterns : int;
  workers : int;  (** concurrent forked workers *)
  shard_timeout_s : float;  (** per-attempt deadline; [<= 0.] disables *)
  max_attempts : int;  (** lease budget before quarantine *)
  backoff_initial_s : float;  (** first retry delay; doubles per attempt *)
  backoff_max_s : float;
  resume : bool;  (** continue an existing queue log *)
  inject : inject;
}

val default_config : campaign:string -> config
(** All circuits × all libraries × seed 42, default patterns, 4 workers,
    300 s shard timeout, 3 attempts, 0.5 s → 30 s backoff, no resume,
    no injection. *)

val enumerate : config -> shard list
(** The shard grid in deterministic (circuit-major) order. *)

type summary = {
  total : int;  (** shards in this campaign's grid *)
  completed : int;  (** shards that ran to [done] in this invocation *)
  resumed : int;  (** shards already [done] in the log when we opened it *)
  quarantined : string list;  (** shard ids set aside, enqueue order *)
  attempts : int;  (** leases taken by this invocation *)
  reclaimed : int;  (** stale leases reclaimed on open *)
  wall_s : float;
}

val run : config -> (summary, Runtime.Cnt_error.t) result
(** Drive the campaign to completion (every shard [done] or
    [quarantined]). Returns [Error] only for setup/configuration
    failures — shard failures degrade into retries and quarantine, never
    abort the campaign. The caller maps a non-empty [quarantined] list to
    the {!Runtime.Cnt_error.Shard_quarantined} exit code. *)

val pp_summary : Format.formatter -> summary -> unit

(** {2 Campaign directory layout} *)

val dir : config -> string
val queue_path : config -> string
val manifest_path : config -> string
val profile_path : config -> string
val events_path : config -> string

val metrics_path : config -> string
(** [_runs/<campaign>/metrics.json] — live {!Runtime.Metrics} snapshot. *)
