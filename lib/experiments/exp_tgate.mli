(** Experiment E7 (Fig. 2): the ambipolar transmission gate transmits
    without degradation in every passing configuration (A xor B = 1) and
    blocks otherwise. DC-solves the two-device transmission gate driving a
    weak load for all four control configurations and both input rails. *)

type config = {
  a : bool;
  b : bool;
  vin : float;
  vout : float;
  passing : bool;  (** A xor B *)
}

val run : unit -> config list
val print : Format.formatter -> config list -> unit

val scalars : config list -> (string * float) list
(** Manifest scalars: configuration counts and the worst full-swing drop. *)
