module D = Cell.Dynlogic

type result = {
  reconf_functions : int;
  reconf_transistors : int;
  gnor2_functions : int;
  gnor2_transistors : int;
  gnor2_dynamic_alpha : float;
  static_gnor2_alpha : float;
}

let run () =
  let reconf = D.reconfigurable2 in
  let gnor2 = D.gnor 2 in
  let worst_alpha gate =
    let worst = ref 0.0 in
    for config = 0 to (1 lsl gate.D.config_pins) - 1 do
      worst := max !worst (D.eval_alpha gate ~config)
    done;
    !worst
  in
  {
    reconf_functions = List.length (D.achievable_functions reconf);
    reconf_transistors = D.num_transistors reconf;
    gnor2_functions = List.length (D.achievable_functions gnor2);
    gnor2_transistors = D.num_transistors gnor2;
    gnor2_dynamic_alpha = worst_alpha gnor2;
    static_gnor2_alpha =
      Power.Activity.gate_alpha (Cell.Cells.tt (Cell.Cells.find "GNOR2"));
  }

let print ppf r =
  Report.render ppf
    {
      Report.title = "E10 (extension): dynamic / reconfigurable ambipolar cells";
      headers = [| "Cell"; "Transistors"; "Distinct 2-input functions" |];
      rows =
        [
          [| "dyn-RECONF2"; string_of_int r.reconf_transistors; string_of_int r.reconf_functions |];
          [| "dyn-GNOR2"; string_of_int r.gnor2_transistors; string_of_int r.gnor2_functions |];
        ];
    };
  Format.fprintf ppf
    "(background [5]: eight functions of two inputs from seven CNTFETs)@.";
  Format.fprintf ppf
    "Worst-case per-cycle activity of dynamic GNOR2: %s vs %s for the static GNOR2 —@."
    (Report.pct r.gnor2_dynamic_alpha)
    (Report.pct r.static_gnor2_alpha);
  Format.fprintf ppf
    "the precharge/evaluate discipline burns the XOR-embedding advantage, which is why@.";
  Format.fprintf ppf "the paper builds its library in static transmission-gate logic.@."

let scalars r =
  [
    ("reconf_functions", float_of_int r.reconf_functions);
    ("reconf_transistors", float_of_int r.reconf_transistors);
    ("gnor2_functions", float_of_int r.gnor2_functions);
    ("gnor2_transistors", float_of_int r.gnor2_transistors);
    ("gnor2_dynamic_alpha", r.gnor2_dynamic_alpha);
    ("static_gnor2_alpha", r.static_gnor2_alpha);
  ]
