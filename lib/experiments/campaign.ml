module E = Runtime.Cnt_error
module W = Runtime.Workqueue
module S = Runtime.Supervisor
module C = Runtime.Checkpoint
module T = Runtime.Telemetry
module Jn = Runtime.Journal
module Tc = Runtime.Tracectx
module M = Runtime.Metrics
module Est = Techmap.Estimate
module G = Cell.Genlib

type shard = {
  sh_id : string;
  sh_circuit : string;
  sh_library : string;
  sh_seed : int64;
}

type inject = {
  inj_crash : string list;
  inj_flaky : string list;
  inj_hang : string list;
  inj_kill_after : int option;
}

let no_inject =
  { inj_crash = []; inj_flaky = []; inj_hang = []; inj_kill_after = None }

type config = {
  campaign : string;
  runs_dir : string;
  circuits : Circuits.Suite.entry list;
  libraries : G.t list;
  seeds : int64 list;
  patterns : int;
  workers : int;
  shard_timeout_s : float;
  max_attempts : int;
  backoff_initial_s : float;
  backoff_max_s : float;
  resume : bool;
  inject : inject;
}

let default_config ~campaign =
  {
    campaign;
    runs_dir = "_runs";
    circuits = Circuits.Suite.all;
    libraries = G.libraries ();
    seeds = [ 42L ];
    patterns = Est.default_patterns;
    workers = 4;
    shard_timeout_s = 300.0;
    max_attempts = 3;
    backoff_initial_s = 0.5;
    backoff_max_s = 30.0;
    resume = false;
    inject = no_inject;
  }

let dir cfg = Filename.concat cfg.runs_dir cfg.campaign
let queue_path cfg = Filename.concat (dir cfg) "queue.jsonl"
let manifest_path cfg = Filename.concat (dir cfg) "manifest.json"
let profile_path cfg = Filename.concat (dir cfg) "profile.json"
let events_path cfg = Filename.concat (dir cfg) "events.jsonl"
let metrics_path cfg = Filename.concat (dir cfg) "metrics.json"

let shard_id circuit library seed = Printf.sprintf "%s/%s/%Ld" circuit library seed

let enumerate cfg =
  List.concat_map
    (fun (entry : Circuits.Suite.entry) ->
      List.concat_map
        (fun (lib : G.t) ->
          List.map
            (fun seed ->
              {
                sh_id = shard_id entry.Circuits.Suite.name lib.G.name seed;
                sh_circuit = entry.Circuits.Suite.name;
                sh_library = lib.G.name;
                sh_seed = seed;
              })
            cfg.seeds)
        cfg.libraries)
    cfg.circuits

type summary = {
  total : int;
  completed : int;
  resumed : int;
  quarantined : string list;
  attempts : int;
  reclaimed : int;
  wall_s : float;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "campaign: %d shards — %d completed, %d resumed, %d quarantined, %d lease(s), %d reclaimed, %.1f s"
    s.total s.completed s.resumed
    (List.length s.quarantined)
    s.attempts s.reclaimed s.wall_s;
  if s.quarantined <> [] then
    Format.fprintf ppf "@.quarantined: %s" (String.concat " " s.quarantined)

(* ------------------------------------------------------------------ *)
(* Shard execution (worker side)                                       *)

let inject_matches lists shard =
  List.exists (fun p -> p = shard.sh_id || p = shard.sh_circuit) lists

let apply_injection inject shard ~attempt =
  if
    inject_matches inject.inj_crash shard
    || (attempt = 1 && inject_matches inject.inj_flaky shard)
  then Unix.kill (Unix.getpid ()) Sys.sigkill
  else if inject_matches inject.inj_hang shard then
    while true do
      Unix.sleepf 3600.0
    done

let shard_scalars (r : Est.report) =
  [
    ("gates", float_of_int r.Est.gates);
    ("area", r.Est.area);
    ("delay_ps", r.Est.delay *. 1e12);
    ("dynamic_uW", r.Est.dynamic *. 1e6);
    ("static_uW", r.Est.static *. 1e6);
    ("total_uW", r.Est.total *. 1e6);
    ("edp_1e-24Js", r.Est.edp *. 1e24);
  ]

(* Runs inside the forked worker; exceptions become typed errors on the
   supervisor's result pipe. *)
let execute cfg shard ~attempt =
  apply_injection cfg.inject shard ~attempt;
  let entry =
    List.find
      (fun (e : Circuits.Suite.entry) -> e.Circuits.Suite.name = shard.sh_circuit)
      cfg.circuits
  in
  let lib = List.find (fun (l : G.t) -> l.G.name = shard.sh_library) cfg.libraries in
  let ctx = [ ("shard", shard.sh_id) ] in
  let nl = entry.Circuits.Suite.generate () in
  let (_ : Nets.Check.report) = Nets.Check.check_exn nl in
  let aig = Aigs.Aig.of_netlist nl in
  let opt = Aigs.Opt.resyn2rs aig in
  let ml = Techmap.Matchlib.build lib in
  match Techmap.Mapper.map_checked ml opt with
  | Error e -> E.raise_error (E.with_context e ctx)
  | Ok mapped ->
      shard_scalars (Est.run ~patterns:cfg.patterns ~seed:shard.sh_seed mapped)

(* ------------------------------------------------------------------ *)
(* Durable result fields: everything needed to rebuild the manifest
   entry rides the [done] record, scalars under an "s:" prefix. *)

let scalar_prefix = "s:"

let done_fields ~wall_s scalars =
  ("wall_s", Printf.sprintf "%.6f" wall_s)
  :: List.map
       (fun (k, v) -> (scalar_prefix ^ k, Printf.sprintf "%.17g" v))
       scalars

let scalars_of_fields fields =
  List.filter_map
    (fun (k, v) ->
      let n = String.length scalar_prefix in
      if String.length k > n && String.sub k 0 n = scalar_prefix then
        Option.map
          (fun f -> (String.sub k n (String.length k - n), f))
          (float_of_string_opt v)
      else None)
    fields

let wall_of_fields fields =
  match List.assoc_opt "wall_s" fields with
  | Some v -> Option.value ~default:0.0 (float_of_string_opt v)
  | None -> 0.0

let entry_of_shard cfg wq sh ~wall_s scalars =
  C.entry ~experiment:sh.sh_id ~seed:sh.sh_seed ~patterns:cfg.patterns
    ~wall_time:wall_s
    ~attempts:(max 1 (W.attempts wq sh.sh_id))
    ~status:C.Passed scalars

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let ( let* ) = Result.bind

let validate cfg =
  let bad fmt = E.error E.Experiment E.Validation_error fmt in
  if
    cfg.campaign = "" || cfg.campaign = "." || cfg.campaign = ".."
    || String.contains cfg.campaign '/'
  then bad "invalid campaign name %S" cfg.campaign
  else if cfg.workers < 1 then bad "workers must be >= 1 (got %d)" cfg.workers
  else if cfg.max_attempts < 1 then
    bad "max-attempts must be >= 1 (got %d)" cfg.max_attempts
  else if cfg.patterns < 1 then bad "patterns must be >= 1 (got %d)" cfg.patterns
  else if cfg.circuits = [] then bad "no circuits selected"
  else if cfg.libraries = [] then bad "no libraries selected"
  else if cfg.seeds = [] then bad "no seeds selected"
  else if (not cfg.resume) && Sys.file_exists (queue_path cfg) then
    E.error
      ~context:[ ("path", queue_path cfg) ]
      E.Experiment E.Validation_error
      "campaign %S already has a queue log; pass --resume to continue it or pick a new --run name"
      cfg.campaign
  else Ok ()

let initial_manifest cfg =
  let path = manifest_path cfg in
  if cfg.resume && Sys.file_exists path then
    match C.load ~path with
    | Ok m -> m
    | Error e ->
        Format.eprintf "campaign: ignoring unreadable manifest: %a@." E.pp e;
        C.empty ~run_name:cfg.campaign
  else C.empty ~run_name:cfg.campaign

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)

type flight = {
  fl_shard : shard;
  fl_attempt : int;
  fl_async : (string * float) list S.async;
  fl_deadline : float;  (** epoch; 0. = no deadline *)
  fl_started : float;
  fl_ctx : Tc.t;  (** shard trace context; stamps every outcome event *)
}

let run cfg =
  let* () = validate cfg in
  let t0 = Unix.gettimeofday () in
  let* wq, torn = W.open_ ~path:(queue_path cfg) in
  if torn > 0 then
    Format.eprintf "campaign: queue log: skipped %d torn/corrupt line(s)@." torn;
  let shards = enumerate cfg in
  let by_id = Hashtbl.create 64 in
  List.iter (fun sh -> Hashtbl.replace by_id sh.sh_id sh) shards;
  List.iter (fun sh -> ignore (W.enqueue wq sh.sh_id)) shards;
  (* Reclaim leases left by a dead (or wedged-past-expiry) coordinator:
     the attempt was consumed, so a shard already at its budget goes
     straight to quarantine. *)
  let reclaimed = ref 0 in
  List.iter
    (fun id ->
      incr reclaimed;
      let att = W.attempts wq id in
      if Jn.enabled () then
        Jn.emit ~level:Jn.Warn Jn.Lease_reclaimed
          [ ("shard", id); ("attempts", string_of_int att) ];
      if att >= cfg.max_attempts then
        W.mark_quarantined wq id
          ~fields:[ ("reason", "lease-reclaimed; attempts exhausted") ]
      else W.mark_failed wq id ~fields:[ ("reason", "lease-reclaimed") ])
    (W.stale_leases wq ~now:(Unix.gettimeofday ()));
  (* The queue log is the durable source of truth: a [done] record whose
     manifest entry never landed (killed between the two writes) is
     rebuilt here from the record's own fields. *)
  let manifest = ref (initial_manifest cfg) in
  let resumed = ref 0 in
  List.iter
    (fun sh ->
      if W.state wq sh.sh_id = Some W.Done then begin
        incr resumed;
        if C.find !manifest sh.sh_id = None then begin
          let fields = W.fields wq sh.sh_id in
          manifest :=
            C.add !manifest
              (entry_of_shard cfg wq sh ~wall_s:(wall_of_fields fields)
                 (scalars_of_fields fields))
        end
      end)
    shards;
  let save_manifest () =
    match C.save ~path:(manifest_path cfg) !manifest with
    | Ok () ->
        if Jn.enabled () then
          Jn.emit ~level:Jn.Debug Jn.Checkpoint_written
            [ ("path", manifest_path cfg) ]
    | Error e -> Format.eprintf "campaign: manifest write failed: %a@." E.pp e
  in
  let save_profile () =
    if T.enabled () then
      match T.save ~path:(profile_path cfg) (T.snapshot ()) with
      | Ok () -> ()
      | Error e -> Format.eprintf "campaign: profile write failed: %a@." E.pp e
  in
  save_manifest ();
  let total_shards = List.length shards in
  if Jn.enabled () then
    Jn.emit Jn.Run_started
      [
        ("run", cfg.campaign);
        ("mode", "campaign");
        ("shards", string_of_int (List.length shards));
        ("resumed", string_of_int !resumed);
        ("workers", string_of_int cfg.workers);
      ];
  let eligible : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let flights = ref [] in
  let completed = ref 0 in
  let leases = ref 0 in
  let in_grid id = Hashtbl.mem by_id id in
  let pending () = List.filter in_grid (W.ready wq) in
  (* Live status for pollers ([cntpower top <campaign>]): an atomic
     snapshot after every state change, cheap enough to write eagerly. *)
  let save_metrics () =
    let snap =
      M.make ~source:"campaign" ~started:t0
        ~gauges:
          [
            ("shards_total", float_of_int total_shards);
            ("workers_busy", float_of_int (List.length !flights));
            ("workers_max", float_of_int cfg.workers);
            ("queue_depth", float_of_int (List.length (pending ())));
          ]
        ~counters:
          [
            ("campaign.completed", !completed);
            ("campaign.done", W.count wq W.Done);
            ("campaign.failed", W.count wq W.Failed);
            ("campaign.quarantined", W.count wq W.Quarantined);
            ("campaign.leases", !leases);
            ("campaign.reclaimed", !reclaimed);
            ("campaign.resumed", !resumed);
          ]
        ()
    in
    match M.save ~path:(metrics_path cfg) snap with
    | Ok () -> ()
    | Error e -> Format.eprintf "campaign: metrics write failed: %a@." E.pp e
  in
  save_metrics ();
  let backoff_delay attempt =
    Float.min cfg.backoff_max_s
      (cfg.backoff_initial_s *. (2.0 ** float_of_int (attempt - 1)))
  in
  let handle_failure fl err =
    Tc.with_ctx fl.fl_ctx @@ fun () ->
    let now = Unix.gettimeofday () in
    let id = fl.fl_shard.sh_id in
    let fields =
      [ ("code", E.code_name err.E.code); ("error", E.to_string err) ]
    in
    if fl.fl_attempt >= cfg.max_attempts then
      W.mark_quarantined wq id ~fields
    else begin
      W.mark_failed wq id ~fields;
      Hashtbl.replace eligible id (now +. backoff_delay fl.fl_attempt)
    end;
    save_metrics ()
  in
  let handle_done fl scalars =
    Tc.with_ctx fl.fl_ctx @@ fun () ->
    let now = Unix.gettimeofday () in
    let id = fl.fl_shard.sh_id in
    let wall_s = now -. fl.fl_started in
    W.mark_done wq id ~fields:(done_fields ~wall_s scalars);
    incr completed;
    (* Fault injection: die at the worst moment — result durable in the
       queue log, manifest entry not yet written. *)
    (match cfg.inject.inj_kill_after with
    | Some n when !completed >= n -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ());
    manifest := C.add !manifest (entry_of_shard cfg wq fl.fl_shard ~wall_s scalars);
    save_manifest ();
    save_profile ();
    save_metrics ()
  in
  let dispatch () =
    let now = Unix.gettimeofday () in
    let capacity = cfg.workers - List.length !flights in
    if capacity > 0 then
      pending ()
      |> List.filter (fun id ->
             match Hashtbl.find_opt eligible id with
             | Some at -> at <= now
             | None -> true)
      |> List.iteri (fun i id ->
             if i < capacity then begin
               let sh = Hashtbl.find by_id id in
               let ttl_s =
                 (if cfg.shard_timeout_s > 0.0 then cfg.shard_timeout_s
                  else 3600.0)
                 +. 60.0
               in
               (* One trace per shard attempt set: the lease record, the
                  worker-spawned event, the worker's own events and its
                  telemetry subtree all share the id, so [cntpower trace
                  --request <id>] slices the shard end-to-end. *)
               let ctx = Tc.mint_root () in
               Tc.with_ctx ctx @@ fun () ->
               let attempt = W.lease wq id ~ttl_s in
               incr leases;
               let a =
                 S.spawn_async
                   ~telemetry_prefix:
                     [ "campaign"; "shard"; Tc.span_label ctx ]
                   ~name:id
                   (fun () -> execute cfg sh ~attempt)
               in
               let started = Unix.gettimeofday () in
               let deadline =
                 if cfg.shard_timeout_s > 0.0 then
                   started +. cfg.shard_timeout_s
                 else 0.0
               in
               flights :=
                 {
                   fl_shard = sh;
                   fl_attempt = attempt;
                   fl_async = a;
                   fl_deadline = deadline;
                   fl_started = started;
                   fl_ctx = ctx;
                 }
                 :: !flights
             end)
  in
  let remove_flight fl =
    flights := List.filter (fun f -> f != fl) !flights
  in
  while pending () <> [] || !flights <> [] do
    let now = Unix.gettimeofday () in
    (* Deadline reaping first: a wedged worker must not hold its slot. *)
    let overdue, live =
      List.partition
        (fun fl -> fl.fl_deadline > 0.0 && now >= fl.fl_deadline)
        !flights
    in
    flights := live;
    List.iter
      (fun fl ->
        Tc.with_ctx fl.fl_ctx @@ fun () ->
        S.async_abort fl.fl_async;
        if Jn.enabled () then
          Jn.emit ~level:Jn.Warn Jn.Worker_timeout
            [
              ("shard", fl.fl_shard.sh_id);
              ("timeout_s", Printf.sprintf "%.1f" cfg.shard_timeout_s);
            ];
        handle_failure fl
          (E.makef
             ~context:[ ("shard", fl.fl_shard.sh_id) ]
             E.Experiment E.Worker_timeout "shard exceeded %.1f s deadline"
             cfg.shard_timeout_s))
      overdue;
    dispatch ();
    match !flights with
    | [] ->
        (* Everything eligible is in backoff; sleep to the next retry. *)
        let now = Unix.gettimeofday () in
        let next =
          List.fold_left
            (fun acc id ->
              match Hashtbl.find_opt eligible id with
              | Some at -> Float.min acc at
              | None -> now)
            (now +. 1.0) (pending ())
        in
        if pending () <> [] then
          Unix.sleepf (Float.max 0.01 (Float.min 1.0 (next -. now)))
    | fls ->
        let now = Unix.gettimeofday () in
        let timeout =
          List.fold_left
            (fun acc fl ->
              if fl.fl_deadline > 0.0 then Float.min acc (fl.fl_deadline -. now)
              else acc)
            0.5 fls
          |> Float.max 0.01
        in
        let fds = List.map (fun fl -> S.async_fd fl.fl_async) fls in
        let readable, _, _ =
          try Unix.select fds [] [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fl ->
            if List.mem (S.async_fd fl.fl_async) readable then
              match
                Tc.with_ctx fl.fl_ctx (fun () -> S.async_step fl.fl_async)
              with
              | `Pending -> ()
              | `Done res -> (
                  remove_flight fl;
                  match res with
                  | Ok scalars -> handle_done fl scalars
                  | Error e -> handle_failure fl e))
          fls
  done;
  let quarantined =
    List.filter (fun id -> W.state wq id = Some W.Quarantined)
      (List.map (fun sh -> sh.sh_id) shards)
  in
  save_manifest ();
  save_profile ();
  save_metrics ();
  let wall_s = Unix.gettimeofday () -. t0 in
  if Jn.enabled () then
    Jn.emit Jn.Run_finished
      [
        ("run", cfg.campaign);
        ("mode", "campaign");
        ("completed", string_of_int !completed);
        ("quarantined", string_of_int (List.length quarantined));
        ("wall_s", Printf.sprintf "%.3f" wall_s);
      ];
  W.close wq;
  Ok
    {
      total = List.length shards;
      completed = !completed;
      resumed = !resumed;
      quarantined;
      attempts = !leases;
      reclaimed = !reclaimed;
      wall_s;
    }
