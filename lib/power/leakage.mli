(** Circuit-level quantification of I_off patterns (Section 3.3).

    Each distinct pattern is turned into a transistor netlist — unit off
    n-devices (gate grounded) arranged in the pattern's series/parallel
    shape between V_DD and ground — and handed to the DC solver; the rail
    current is the pattern's subthreshold leakage. Results are cached per
    (pattern, technology family), which is exactly why the paper's pattern
    classification saves simulation work. *)

val pattern_ioff : Spice.Tech.t -> Pattern.t -> float
(** Leakage current of a pattern at rail bias. [Pattern.Unit 0] (an empty
    network, e.g. a gate whose off network vanished entirely) yields 0. *)

val clear_cache : unit -> unit
(** Drop the in-memory table and zero the hit/miss counters. With
    persistence on, the next lookup reloads the on-disk artifact (the
    artifact itself is never deleted). *)

val set_persistent : bool -> unit
(** Back the table with a {!Runtime.Diskcache} artifact
    ([_cache/leakage-<digest>.bin], keyed by solver format and compiler
    version): the first lookup merges the artifact into the table, newly
    solved entries are written back by {!flush} (registered [at_exit]).
    Off by default — measurements of solver work (the pattern-census
    experiment's golden [dc_solves]) need a genuinely cold cache; the
    CLI enables it for pipeline runs unless [--no-cache]. *)

val persistent : unit -> bool

val flush : unit -> unit
(** Write the table back to disk now, if persistence is on and entries
    were added since the last flush. *)

type stats = { entries : int; hits : int; misses : int }
(** [misses] counts actual DC solves; [hits] counts solves the
    classification cache avoided. *)

val cache_stats : unit -> stats

val hit_ratio : stats -> float
(** Hits over total lookups, 0 when the cache was never consulted. *)

val gate_ioff : Spice.Tech.t -> Pattern.gate_patterns -> float array
(** Per input vector: pattern leakage plus one unit off-current per internal
    inverter. *)

val gate_ig : Spice.Tech.t -> Pattern.gate_patterns -> float array
(** Per input vector gate-tunneling current: on devices leak at the on rate,
    off devices at the (much lower) off rate. *)
