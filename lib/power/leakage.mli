(** Circuit-level quantification of I_off patterns (Section 3.3).

    Each distinct pattern is turned into a transistor netlist — unit off
    n-devices (gate grounded) arranged in the pattern's series/parallel
    shape between V_DD and ground — and handed to the DC solver; the rail
    current is the pattern's subthreshold leakage. Results are cached per
    (pattern, technology family), which is exactly why the paper's pattern
    classification saves simulation work. *)

val pattern_ioff : Spice.Tech.t -> Pattern.t -> float
(** Leakage current of a pattern at rail bias. [Pattern.Unit 0] (an empty
    network, e.g. a gate whose off network vanished entirely) yields 0. *)

val clear_cache : unit -> unit

type stats = { entries : int; hits : int; misses : int }
(** [misses] counts actual DC solves; [hits] counts solves the
    classification cache avoided. *)

val cache_stats : unit -> stats

val hit_ratio : stats -> float
(** Hits over total lookups, 0 when the cache was never consulted. *)

val gate_ioff : Spice.Tech.t -> Pattern.gate_patterns -> float array
(** Per input vector: pattern leakage plus one unit off-current per internal
    inverter. *)

val gate_ig : Spice.Tech.t -> Pattern.gate_patterns -> float array
(** Per input vector gate-tunneling current: on devices leak at the on rate,
    off devices at the (much lower) off rate. *)
