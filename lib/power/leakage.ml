module C = Spice.Circuit
module D = Spice.Device
module T = Spice.Tech

(* The key captures every tech field the DC solve depends on, so derived
   corners (other supplies, temperatures, threshold shifts) and data-file
   corners (which can override slope, saturation exponent or specific
   current while keeping family/vdd/vth — see Cell.Libfile) do not
   collide. [ss], [sat] and [ispec] matter because [solve_pattern] builds
   unit n-devices straight from the corner record. *)
type key = {
  family : T.family;
  vdd : float;
  vt : float;
  vth : float;
  ss : float;
  sat : float;
  ispec : float;
  pattern : Pattern.t;
}

let cache : (key, float) Hashtbl.t = Hashtbl.create 64
let hits = ref 0
let misses = ref 0

(* Persistent layer: the whole table marshals to one Diskcache artifact.
   Off by default so measurements of solver work (exp_patterns' golden
   dc_solves) stay cold; the CLI turns it on for pipeline runs. *)
let solver_version = 2
let persistent_flag = ref false
let loaded = ref false
let dirty = ref false

let disk_digest () =
  Runtime.Diskcache.digest
    [ "leakage"; string_of_int solver_version; Sys.ocaml_version ]

let flush () =
  if !persistent_flag && !dirty then begin
    dirty := false;
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) cache [] in
    let entries = List.sort compare entries in
    Runtime.Diskcache.store ~name:"leakage" ~digest:(disk_digest ()) entries
  end

let at_exit_registered = ref false

let set_persistent b =
  persistent_flag := b;
  if b && not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit flush
  end

let persistent () = !persistent_flag

let load_if_needed () =
  if !persistent_flag && not !loaded then begin
    loaded := true;
    match Runtime.Diskcache.load ~name:"leakage" ~digest:(disk_digest ()) with
    | None -> ()
    | Some (entries : (key * float) list) ->
        List.iter
          (fun (k, v) ->
            if not (Hashtbl.mem cache k) then Hashtbl.replace cache k v)
          entries
  end

let clear_cache () =
  Hashtbl.reset cache;
  hits := 0;
  misses := 0;
  loaded := false;
  dirty := false

type stats = { entries : int; hits : int; misses : int }

let cache_stats () =
  { entries = Hashtbl.length cache; hits = !hits; misses = !misses }

let hit_ratio s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* Build the pattern between two circuit nodes as unit off n-devices (gate
   grounded, maximum-leakage bias per the paper's equal-n/p assumption). *)
let rec build c tech ~top ~bottom ~fresh = function
  | Pattern.Unit k ->
      for _ = 1 to k do
        C.add_transistor c (D.Nmos tech) ~d:top ~g:C.ground ~s:bottom ()
      done
  | Pattern.Series parts ->
      let rec chain top = function
        | [] -> ()
        | [ last ] -> build c tech ~top ~bottom ~fresh last
        | part :: rest ->
            let mid = fresh () in
            build c tech ~top ~bottom:mid ~fresh part;
            chain mid rest
      in
      chain top parts
  | Pattern.Parallel parts ->
      List.iter (fun part -> build c tech ~top ~bottom ~fresh part) parts

let solve_pattern tech pattern =
  match pattern with
  | Pattern.Unit 0 -> 0.0
  | Pattern.Unit _ | Pattern.Series _ | Pattern.Parallel _ ->
      let c = C.create () in
      let vdd = C.node c "vdd" in
      C.add_vsource c vdd tech.T.vdd;
      let counter = ref 0 in
      let fresh () =
        incr counter;
        C.node c (Printf.sprintf "n%d" !counter)
      in
      build c tech ~top:vdd ~bottom:C.ground ~fresh pattern;
      let sol = C.solve c in
      C.source_current c sol vdd

let pattern_ioff tech pattern =
  load_if_needed ();
  let key =
    {
      family = tech.T.family;
      vdd = tech.T.vdd;
      vt = tech.T.temp_vt;
      vth = tech.T.vth_n;
      ss = tech.T.ss_factor;
      sat = tech.T.sat_exponent;
      ispec = tech.T.ispec;
      pattern;
    }
  in
  match Hashtbl.find_opt cache key with
  | Some i ->
      incr hits;
      Runtime.Telemetry.count "leakage.cache.hits" 1;
      i
  | None ->
      incr misses;
      Runtime.Telemetry.count "leakage.cache.misses" 1;
      Runtime.Telemetry.count "leakage.dc_solves" 1;
      let i = solve_pattern tech pattern in
      Hashtbl.replace cache key i;
      dirty := true;
      i

let gate_ioff tech (gp : Pattern.gate_patterns) =
  let unit = pattern_ioff tech (Pattern.Unit 1) in
  Array.map
    (fun p -> pattern_ioff tech p +. (float_of_int gp.Pattern.extra_unit_offs *. unit))
    gp.Pattern.off_pattern

let gate_ig tech (gp : Pattern.gate_patterns) =
  Array.init
    (Array.length gp.Pattern.on_devices)
    (fun v ->
      (float_of_int gp.Pattern.on_devices.(v) *. tech.T.ig_on_unit)
      +. (float_of_int gp.Pattern.off_devices.(v) *. tech.T.ig_off_unit))
