module A = Aigs.Aig
module Cut = Aigs.Cut
module G = Cell.Genlib
module T = Logic.Truthtable

type objective = Delay | Area

type choice =
  | Wire
  | Inv
  | Gate of Matchlib.candidate * int array (* support leaf node ids *)

type info = { arrival : float; aflow : float; choice : choice }

let better objective a b =
  (* Is [a] better than [b]? *)
  match objective with
  | Delay -> a.arrival < b.arrival -. 1e-18 || (a.arrival < b.arrival +. 1e-18 && a.aflow < b.aflow)
  | Area -> a.aflow < b.aflow -. 1e-24 || (a.aflow < b.aflow +. 1e-24 && a.arrival < b.arrival)

(* Pre-computed matching data per AND node: for each cut, the shrunk cut
   function's support leaves and the candidate list per output phase. *)
type node_matches = (int array * Matchlib.candidate list * Matchlib.candidate list) list

let compute_matches ml aig ~k ~max_cuts =
  let n = A.num_nodes aig in
  let ninputs = A.num_inputs aig in
  let cuts = Cut.enumerate aig ~k ~max_cuts in
  let matches : node_matches array = Array.make n [] in
  for node = ninputs + 1 to n - 1 do
    let acc = ref [] in
    Array.iter
      (fun (cut : Cut.cut) ->
        if not (cut.Cut.leaves = [| node |]) then begin
          let tt_full = Cut.cut_tt aig node cut in
          let support = T.support tt_full in
          if support <> [] then begin
            let tt = T.shrink tt_full in
            let leaves_sup =
              Array.of_list (List.map (fun v -> cut.Cut.leaves.(v)) support)
            in
            let pos = Matchlib.lookup ml tt in
            let neg = Matchlib.lookup ml (T.lognot tt) in
            if pos <> [] || neg <> [] then acc := (leaves_sup, pos, neg) :: !acc
          end
        end)
      cuts.(node);
    matches.(node) <- !acc
  done;
  matches

(* One selection pass: per node and phase, pick the best match under the
   objective, using [weight] as the fanout estimate for area flow. *)
let select ~objective ~inv (matches : node_matches array) aig weight =
  let n = A.num_nodes aig in
  let ninputs = A.num_inputs aig in
  let tried = ref 0 in
  let best : info option array array = Array.make_matrix n 2 None in
  for node = 1 to ninputs do
    best.(node).(0) <- Some { arrival = 0.0; aflow = 0.0; choice = Wire };
    best.(node).(1) <-
      Some { arrival = inv.G.delay; aflow = inv.G.area /. weight node; choice = Inv }
  done;
  for node = ninputs + 1 to n - 1 do
    let candidate = [| ref None; ref None |] in
    let consider phase leaves_sup (cand : Matchlib.candidate) =
      incr tried;
      let gate = cand.Matchlib.gate in
      let feasible = ref true in
      let arrival = ref gate.G.delay in
      let area_sum = ref gate.G.area in
      let pins = Array.length cand.Matchlib.perm in
      for j = 0 to pins - 1 do
        let leaf = leaves_sup.(cand.Matchlib.perm.(j)) in
        let need = (cand.Matchlib.inv_mask lsr j) land 1 in
        match best.(leaf).(need) with
        | None -> feasible := false
        | Some li ->
            if gate.G.delay +. li.arrival > !arrival then arrival := gate.G.delay +. li.arrival;
            area_sum := !area_sum +. li.aflow
      done;
      if !feasible then begin
        let info =
          { arrival = !arrival; aflow = !area_sum /. weight node; choice = Gate (cand, leaves_sup) }
        in
        match !(candidate.(phase)) with
        | Some cur when not (better objective info cur) -> ()
        | Some _ | None -> candidate.(phase) := Some info
      end
    in
    List.iter
      (fun (leaves_sup, pos, neg) ->
        List.iter (consider 0 leaves_sup) pos;
        List.iter (consider 1 leaves_sup) neg)
      matches.(node);
    best.(node).(0) <- !(candidate.(0));
    best.(node).(1) <- !(candidate.(1));
    let relax phase =
      match best.(node).(1 - phase) with
      | None -> ()
      | Some other ->
          let via_inv =
            {
              arrival = other.arrival +. inv.G.delay;
              aflow = other.aflow +. (inv.G.area /. weight node);
              choice = Inv;
            }
          in
          (match best.(node).(phase) with
          | Some cur when not (better objective via_inv cur) -> ()
          | Some _ | None -> best.(node).(phase) <- Some via_inv)
    in
    relax 0;
    relax 1;
    if best.(node).(0) = None && best.(node).(1) = None then
      Runtime.Cnt_error.failf
        ~context:[ ("node", string_of_int node) ]
        Runtime.Cnt_error.Techmap Runtime.Cnt_error.Unmapped_node
        "Mapper.map: node %d has no match" node
  done;
  Runtime.Telemetry.count "mapper.matches_tried" !tried;
  best

(* Count how many times each node is referenced by the cover implied by
   [best] — the exact fanout of the chosen implementation. *)
let cover_references best aig =
  let n = A.num_nodes aig in
  let refs = Array.make n 0 in
  let visited = Hashtbl.create 256 in
  let rec visit node phase =
    if not (Hashtbl.mem visited (node, phase)) then begin
      Hashtbl.replace visited (node, phase) ();
      match best.(node).(phase) with
      | None -> ()
      | Some info -> (
          match info.choice with
          | Wire -> ()
          | Inv ->
              refs.(node) <- refs.(node) + 1;
              visit node (1 - phase)
          | Gate (cand, leaves) ->
              let pins = Array.length cand.Matchlib.perm in
              for j = 0 to pins - 1 do
                let leaf = leaves.(cand.Matchlib.perm.(j)) in
                let need = (cand.Matchlib.inv_mask lsr j) land 1 in
                refs.(leaf) <- refs.(leaf) + 1;
                visit leaf need
              done)
    end
  in
  Array.iter
    (fun (_, lit) ->
      let node = A.node_of_lit lit in
      if node <> 0 then begin
        refs.(node) <- refs.(node) + 1;
        visit node (if A.is_complemented lit then 1 else 0)
      end)
    (A.outputs aig);
  refs

let extract best aig lib inv =
  let next_net = ref 0 in
  let fresh_net () =
    let id = !next_net in
    incr next_net;
    id
  in
  let pi_nets =
    Array.map
      (fun lit -> (A.input_name aig (A.node_of_lit lit), fresh_net ()))
      (A.input_lits aig)
  in
  let cells = ref [] in
  let memo_hits = ref 0 in
  let memo = Hashtbl.create 256 in
  let add_cell gate inputs =
    let out = fresh_net () in
    cells := { Mapped.gate; inputs; output = out } :: !cells;
    out
  in
  let rec realize node phase =
    match Hashtbl.find_opt memo (node, phase) with
    | Some net ->
        incr memo_hits;
        net
    | None ->
        let info =
          match best.(node).(phase) with
          | Some i -> i
          | None ->
              Runtime.Cnt_error.failf
                ~context:[ ("node", string_of_int node) ]
                Runtime.Cnt_error.Techmap Runtime.Cnt_error.Unmapped_node
                "Mapper.map: unmapped phase required"
        in
        let net =
          match info.choice with
          | Wire -> snd pi_nets.(node - 1)
          | Inv -> add_cell inv [| realize node (1 - phase) |]
          | Gate (cand, leaves) ->
              let gate = cand.Matchlib.gate in
              let pins = Array.length cand.Matchlib.perm in
              let inputs =
                Array.init pins (fun j ->
                    let leaf = leaves.(cand.Matchlib.perm.(j)) in
                    let need = (cand.Matchlib.inv_mask lsr j) land 1 in
                    realize leaf need)
              in
              add_cell gate inputs
        in
        Hashtbl.replace memo (node, phase) net;
        net
  in
  let const_nets = ref [] in
  let const_net = [| None; None |] in
  let realize_const phase =
    match const_net.(phase) with
    | Some net -> net
    | None ->
        let net = fresh_net () in
        const_nets := (net, phase = 1) :: !const_nets;
        const_net.(phase) <- Some net;
        net
  in
  let po_nets =
    Array.map
      (fun (name, lit) ->
        let node = A.node_of_lit lit in
        let phase = if A.is_complemented lit then 1 else 0 in
        if node = 0 then (name, realize_const phase) else (name, realize node phase))
      (A.outputs aig)
  in
  let cells = Array.of_list (List.rev !cells) in
  Runtime.Telemetry.count "mapper.memo_hits" !memo_hits;
  Runtime.Telemetry.count "mapper.cells_emitted" (Array.length cells);
  {
    Mapped.lib;
    num_nets = !next_net;
    pi_nets;
    po_nets;
    const_nets = Array.of_list !const_nets;
    cells;
  }

let map ?(objective = Delay) ?(k = 6) ?(max_cuts = 10) ml aig =
  Runtime.Telemetry.with_span "techmap.map" (fun () ->
      let lib = Matchlib.library ml in
      let inv = Matchlib.inverter ml in
      let matches = compute_matches ml aig ~k ~max_cuts in
      let fanouts = A.fanout_counts aig in
      let weight_of refs node = float_of_int (max 1 refs.(node)) in
      let best = ref (select ~objective ~inv matches aig (weight_of fanouts)) in
      (* For area-oriented covering, iterate with exact cover reference
         counts: the classic area-flow refinement (two rounds suffice in
         practice). *)
      if objective = Area then
        for _ = 1 to 2 do
          let refs = cover_references !best aig in
          best := select ~objective ~inv matches aig (weight_of refs)
        done;
      extract !best aig lib inv)

let map_checked ?objective ?k ?max_cuts ml aig =
  Runtime.Cnt_error.protect ~stage:Runtime.Cnt_error.Techmap (fun () ->
      map ?objective ?k ?max_cuts ml aig)
