(** Technology-mapped netlists: instances of library gates wired by nets.

    Net 0.. are created in topological order: primary-input nets first, then
    one net per cell output. This is the form on which area, delay and the
    paper's Table 1 power figures are computed. *)

type cell = {
  gate : Cell.Genlib.gate;
  inputs : int array;  (** driving nets, one per gate pin *)
  output : int;
}

type t = {
  lib : Cell.Genlib.t;
  num_nets : int;
  pi_nets : (string * int) array;
  po_nets : (string * int) array;
  const_nets : (int * bool) array;
      (** rail-tied nets (constant primary outputs after optimization) *)
  cells : cell array;  (** topological order *)
}

val num_gates : t -> int
val area : t -> float

val arrival_times : t -> float array
(** Per-net arrival time (PIs at 0). *)

val delay : t -> float
(** Critical-path delay to the latest primary output, seconds. *)

val net_loads : ?wire_cap_per_fanout:float -> t -> float array
(** Per-net capacitive load: the driver's intrinsic output capacitance plus
    the input capacitance of every driven pin; primary outputs additionally
    drive one inverter-equivalent load. [wire_cap_per_fanout] adds a lumped
    wire capacitance per driven pin (0 by default — the paper ignores
    interconnect; ablation A6 measures the sensitivity of its conclusions
    to that simplification). *)

val gate_histogram : t -> (string * int) list
(** Cell usage count by gate name, descending. *)

val simulate : ?domains:int -> t -> Logic.Bitvec.t array -> Logic.Bitvec.t array
(** Per-net values given one stimulus vector per primary input. The
    pattern axis shards across domains ({!Runtime.Dpool}, word-aligned
    chunks); results are bit-identical for any [?domains] (default
    {!Runtime.Dpool.default_domains}). *)

val check :
  ?domains:int -> t -> Nets.Netlist.t -> patterns:int -> seed:int64 -> bool
(** Random co-simulation of the mapped netlist against a reference netlist
    with matching PI/PO names: true when all sampled outputs agree. The
    verdict is deterministic in [seed] for any [?domains]. *)

val pp_stats : Format.formatter -> t -> unit
