(** Netlist-level power estimation (Section 4 of the paper).

    The mapped netlist is simulated with uniform random patterns (the paper
    uses 640 K); per-net toggle rates drive the dynamic power, per-net
    signal probabilities drive the expected static and gate-tunneling
    leakage of every cell through the characterized per-input-vector
    currents (input independence is assumed when weighting vectors, a
    standard first-order approximation). *)

type report = {
  gates : int;
  area : float;
  delay : float;  (** s *)
  dynamic : float;  (** W *)
  short_circuit : float;
  static : float;
  gate_leak : float;
  total : float;
  edp : float;  (** J·s, (P_T / f) · delay *)
}

val default_patterns : int
(** 640_000, as in the paper. *)

val run :
  ?domains:int ->
  ?patterns:int ->
  ?seed:int64 ->
  ?wire_cap_per_fanout:float ->
  Mapped.t ->
  report
(** [wire_cap_per_fanout] adds lumped interconnect capacitance per driven
    pin (default 0, the paper's assumption). The Monte-Carlo sweep shards
    across [?domains] (default {!Runtime.Dpool.default_domains});
    reported figures are bit-identical for any domain count. With
    telemetry enabled and more than one domain, a short sequential
    calibration run feeds the [sim.parallel_speedup] distribution. *)

val static_components : Mapped.t -> probs:(int -> float) -> float * float
(** [(static, gate_leak)] powers in W of every cell, weighting each cell's
    characterized per-input-vector currents by the given per-net
    1-probabilities (independence assumption). Shared by the combinational
    and the sequential estimators. *)

val pp_report : Format.formatter -> report -> unit

val pp_row : Format.formatter -> string * report -> unit
(** One Table-1-style row: name, gates, delay (ps), P_D, P_S, P_T (uW),
    EDP (1e-24 J·s). *)

val run_blif :
  ?domains:int ->
  ?patterns:int ->
  ?seed:int64 ->
  lib:Cell.Genlib.t ->
  string ->
  (report, Runtime.Cnt_error.t) result
(** Checked end-to-end pipeline over BLIF {e text}: parse, well-formedness
    check ({!Nets.Check.check}), AIG construction, [resyn2rs], matchlib
    build (disk-cached), mapping, then {!run}. Used by [cntpower serve],
    whose requests carry the netlist inline. Every failure — parse error,
    combinational loop, unmapped node, non-finite power — is a typed
    error, never an exception. *)
