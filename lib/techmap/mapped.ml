module G = Cell.Genlib
module B = Logic.Bitvec
module T = Logic.Truthtable

type cell = { gate : G.gate; inputs : int array; output : int }

type t = {
  lib : G.t;
  num_nets : int;
  pi_nets : (string * int) array;
  po_nets : (string * int) array;
  const_nets : (int * bool) array;
  cells : cell array;
}

let num_gates t = Array.length t.cells
let area t = Array.fold_left (fun acc c -> acc +. c.gate.G.area) 0.0 t.cells

let arrival_times t =
  let arr = Array.make t.num_nets 0.0 in
  Array.iter
    (fun c ->
      let worst = Array.fold_left (fun acc net -> max acc arr.(net)) 0.0 c.inputs in
      arr.(c.output) <- worst +. c.gate.G.delay)
    t.cells;
  arr

let delay t =
  let arr = arrival_times t in
  Array.fold_left (fun acc (_, net) -> max acc arr.(net)) 0.0 t.po_nets

let net_loads ?(wire_cap_per_fanout = 0.0) t =
  let loads = Array.make t.num_nets 0.0 in
  Array.iter
    (fun c ->
      loads.(c.output) <- loads.(c.output) +. c.gate.G.output_drain_cap;
      Array.iteri
        (fun pin net ->
          loads.(net) <- loads.(net) +. c.gate.G.input_caps.(pin) +. wire_cap_per_fanout)
        c.inputs)
    t.cells;
  Array.iter
    (fun (_, net) ->
      loads.(net) <- loads.(net) +. Spice.Tech.inverter_input_cap t.lib.G.tech)
    t.po_nets;
  loads

let gate_histogram t =
  let counts = Hashtbl.create 32 in
  Array.iter
    (fun c ->
      let name = c.gate.G.cell.Cell.Cells.name in
      Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name)))
    t.cells;
  Hashtbl.fold (fun name count acc -> (name, count) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let simulate t stimulus =
  assert (Array.length stimulus = Array.length t.pi_nets);
  let npat = if Array.length stimulus = 0 then 0 else B.length stimulus.(0) in
  let values = Array.make t.num_nets (B.create npat) in
  Array.iteri (fun i (_, net) -> values.(net) <- stimulus.(i)) t.pi_nets;
  Array.iter
    (fun (net, b) -> if b then values.(net) <- B.lognot (B.create npat))
    t.const_nets;
  (* Covers are cached per gate name; evaluation runs as raw word loops to
     keep 640 K-pattern simulation cheap. *)
  let cover_cache = Hashtbl.create 32 in
  let cube_words = ref 0 in
  let cover_of gate =
    let name = gate.G.cell.Cell.Cells.name in
    match Hashtbl.find_opt cover_cache name with
    | Some cubes -> cubes
    | None ->
        let cubes = Array.of_list (T.isop (Cell.Cells.tt gate.G.cell)) in
        Hashtbl.replace cover_cache name cubes;
        cubes
  in
  Array.iter
    (fun c ->
      let cubes = cover_of c.gate in
      let out = B.create npat in
      let out_words = B.words out in
      let nwords = Array.length out_words in
      cube_words := !cube_words + (Array.length cubes * nwords);
      let pins = Array.length c.inputs in
      let pin_words = Array.map (fun net -> B.words values.(net)) c.inputs in
      for ci = 0 to Array.length cubes - 1 do
        let cube = cubes.(ci) in
        for w = 0 to nwords - 1 do
          let prod = ref (-1L) in
          for pin = 0 to pins - 1 do
            if (cube.T.pos lsr pin) land 1 = 1 then
              prod := Int64.logand !prod pin_words.(pin).(w)
            else if (cube.T.neg lsr pin) land 1 = 1 then
              prod := Int64.logand !prod (Int64.lognot pin_words.(pin).(w))
          done;
          out_words.(w) <- Int64.logor out_words.(w) !prod
        done
      done;
      (* Mask the tail beyond npat (inputs are clean, but all-neg cubes and
         the constant -1 product can set tail bits). *)
      (if npat land 63 <> 0 && nwords > 0 then
         let mask = Int64.sub (Int64.shift_left 1L (npat land 63)) 1L in
         out_words.(nwords - 1) <- Int64.logand out_words.(nwords - 1) mask);
      values.(c.output) <- out)
    t.cells;
  Runtime.Telemetry.count "mapped.sim.cube_words" !cube_words;
  Runtime.Telemetry.count "mapped.sim.cells" (Array.length t.cells);
  values

let check t reference ~patterns ~seed =
  let module N = Nets.Netlist in
  let module Sim = Nets.Sim in
  let rng = Logic.Prng.create seed in
  let stimulus =
    Array.init
      (Array.length t.pi_nets)
      (fun _ ->
        let v = B.create patterns in
        B.fill_random rng v;
        v)
  in
  (* Align reference inputs by name. *)
  let ref_inputs = N.inputs reference in
  let by_name =
    Array.to_list (Array.map (fun id -> (N.input_name reference id, id)) ref_inputs)
  in
  let ref_stimulus =
    Array.map
      (fun id ->
        let name = N.input_name reference id in
        match Array.to_list t.pi_nets |> List.assoc_opt name with
        | Some _ ->
            let idx =
              let rec find i = if fst t.pi_nets.(i) = name then i else find (i + 1) in
              find 0
            in
            stimulus.(idx)
        | None ->
            Runtime.Cnt_error.failf
              ~context:[ ("net", name) ]
              Runtime.Cnt_error.Techmap Runtime.Cnt_error.Missing_signal
              "Mapped.check: unknown PI %s" name)
      ref_inputs
  in
  ignore by_name;
  let ref_result = Sim.run reference ref_stimulus in
  let ref_outs = Sim.output_values reference ref_result in
  let values = simulate t stimulus in
  Array.for_all
    (fun (name, net) ->
      let ref_v =
        let rec find i =
          if fst ref_outs.(i) = name then snd ref_outs.(i) else find (i + 1)
        in
        find 0
      in
      B.equal values.(net) ref_v)
    t.po_nets

let pp_stats ppf t =
  Format.fprintf ppf "mapped[%s]: %d gates, area %g, delay %.1f ps" t.lib.G.name
    (num_gates t) (area t) (delay t *. 1e12)
