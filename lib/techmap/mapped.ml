module G = Cell.Genlib
module B = Logic.Bitvec
module T = Logic.Truthtable

type cell = { gate : G.gate; inputs : int array; output : int }

type t = {
  lib : G.t;
  num_nets : int;
  pi_nets : (string * int) array;
  po_nets : (string * int) array;
  const_nets : (int * bool) array;
  cells : cell array;
}

let num_gates t = Array.length t.cells
let area t = Array.fold_left (fun acc c -> acc +. c.gate.G.area) 0.0 t.cells

let arrival_times t =
  let arr = Array.make t.num_nets 0.0 in
  Array.iter
    (fun c ->
      let worst = Array.fold_left (fun acc net -> max acc arr.(net)) 0.0 c.inputs in
      arr.(c.output) <- worst +. c.gate.G.delay)
    t.cells;
  arr

let delay t =
  let arr = arrival_times t in
  Array.fold_left (fun acc (_, net) -> max acc arr.(net)) 0.0 t.po_nets

let net_loads ?(wire_cap_per_fanout = 0.0) t =
  let loads = Array.make t.num_nets 0.0 in
  Array.iter
    (fun c ->
      loads.(c.output) <- loads.(c.output) +. c.gate.G.output_drain_cap;
      Array.iteri
        (fun pin net ->
          loads.(net) <- loads.(net) +. c.gate.G.input_caps.(pin) +. wire_cap_per_fanout)
        c.inputs)
    t.cells;
  Array.iter
    (fun (_, net) ->
      loads.(net) <- loads.(net) +. Spice.Tech.inverter_input_cap t.lib.G.tech)
    t.po_nets;
  loads

let gate_histogram t =
  let counts = Hashtbl.create 32 in
  Array.iter
    (fun c ->
      let name = c.gate.G.cell.Cell.Cells.name in
      Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name)))
    t.cells;
  Hashtbl.fold (fun name count acc -> (name, count) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let simulate ?domains t stimulus =
  assert (Array.length stimulus = Array.length t.pi_nets);
  let npat = if Array.length stimulus = 0 then 0 else B.length stimulus.(0) in
  let values = Array.make t.num_nets (B.create npat) in
  Array.iteri (fun i (_, net) -> values.(net) <- stimulus.(i)) t.pi_nets;
  Array.iter
    (fun (net, b) -> if b then values.(net) <- B.lognot (B.create npat))
    t.const_nets;
  (* Preallocate every cell output, then lower the topo-ordered cells to
     (cover, fanin words, output words) triples so the kernel below is
     raw word loops — covers cached per gate name. The word axis shards
     across domains: word-level ops are word-local, so any domain count
     produces bit-identical values. *)
  Array.iter (fun c -> values.(c.output) <- B.create npat) t.cells;
  let cover_cache = Hashtbl.create 32 in
  let cover_of gate =
    let name = gate.G.cell.Cell.Cells.name in
    match Hashtbl.find_opt cover_cache name with
    | Some cubes -> cubes
    | None ->
        let cubes = Array.of_list (T.isop (Cell.Cells.tt gate.G.cell)) in
        Hashtbl.replace cover_cache name cubes;
        cubes
  in
  let kernels =
    Array.map
      (fun c ->
        ( cover_of c.gate,
          Array.map (fun net -> B.words values.(net)) c.inputs,
          B.words values.(c.output) ))
      t.cells
  in
  let nwords = max 1 ((npat + 63) / 64) in
  let cubes_per_word =
    Array.fold_left (fun acc (cubes, _, _) -> acc + Array.length cubes) 0 kernels
  in
  let stats =
    Runtime.Dpool.run ?domains ~units:nwords (fun ~worker ~lo ~len ->
        let hi = lo + len - 1 in
        Array.iter
          (fun (cubes, pin_words, out_words) ->
            let ncubes = Array.length cubes and pins = Array.length pin_words in
            for w = lo to hi do
              let acc = ref 0L in
              for ci = 0 to ncubes - 1 do
                let cube = cubes.(ci) in
                let prod = ref (-1L) in
                for pin = 0 to pins - 1 do
                  if (cube.T.pos lsr pin) land 1 = 1 then
                    prod := Int64.logand !prod pin_words.(pin).(w)
                  else if (cube.T.neg lsr pin) land 1 = 1 then
                    prod := Int64.logand !prod (Int64.lognot pin_words.(pin).(w))
                done;
                acc := Int64.logor !acc !prod
              done;
              out_words.(w) <- !acc
            done)
          kernels;
        if Runtime.Telemetry.enabled () then begin
          Runtime.Telemetry.count "mapped.sim.cube_words" (cubes_per_word * len);
          Runtime.Telemetry.count
            (Printf.sprintf "sim.d%d.patterns_simulated" worker)
            (max 0 (min ((lo + len) * 64) npat - (lo * 64)))
        end)
  in
  (* Clamp tails beyond npat (inputs are clean, but all-neg cubes and the
     constant -1 product can set tail bits). *)
  Array.iter (fun c -> B.clamp values.(c.output)) t.cells;
  Runtime.Telemetry.count "mapped.sim.cells" (Array.length t.cells);
  Runtime.Telemetry.observe "sim.domains"
    (float_of_int stats.Runtime.Dpool.domains_used);
  values

let check ?domains t reference ~patterns ~seed =
  let module N = Nets.Netlist in
  let module Sim = Nets.Sim in
  let stimulus =
    Sim.random_stimulus ?domains ~seed ~inputs:(Array.length t.pi_nets)
      ~patterns ()
  in
  (* Align reference inputs by name. *)
  let ref_inputs = N.inputs reference in
  let by_name =
    Array.to_list (Array.map (fun id -> (N.input_name reference id, id)) ref_inputs)
  in
  let ref_stimulus =
    Array.map
      (fun id ->
        let name = N.input_name reference id in
        match Array.to_list t.pi_nets |> List.assoc_opt name with
        | Some _ ->
            let idx =
              let rec find i = if fst t.pi_nets.(i) = name then i else find (i + 1) in
              find 0
            in
            stimulus.(idx)
        | None ->
            Runtime.Cnt_error.failf
              ~context:[ ("net", name) ]
              Runtime.Cnt_error.Techmap Runtime.Cnt_error.Missing_signal
              "Mapped.check: unknown PI %s" name)
      ref_inputs
  in
  ignore by_name;
  let ref_result = Sim.run ?domains reference ref_stimulus in
  let ref_outs = Sim.output_values reference ref_result in
  let values = simulate ?domains t stimulus in
  Array.for_all
    (fun (name, net) ->
      let ref_v =
        let rec find i =
          if fst ref_outs.(i) = name then snd ref_outs.(i) else find (i + 1)
        in
        find 0
      in
      B.equal values.(net) ref_v)
    t.po_nets

let pp_stats ppf t =
  Format.fprintf ppf "mapped[%s]: %d gates, area %g, delay %.1f ps" t.lib.G.name
    (num_gates t) (area t) (delay t *. 1e12)
