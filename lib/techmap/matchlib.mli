(** Boolean match tables for technology mapping.

    Every library gate function is expanded over all input permutations and
    input polarities; the resulting truth tables are hashed so that a cut
    function found during mapping resolves to the gates that realize it (and
    how the cut leaves bind to gate pins) in O(1). Gates with more than
    {!max_pins} pins are excluded from matching (none exist in the shipped
    libraries). *)

type candidate = {
  gate : Cell.Genlib.gate;
  perm : int array;  (** pin [j] of the gate connects to leaf [perm.(j)] *)
  inv_mask : int;  (** bit [j]: pin [j] takes the complemented leaf value *)
}

type t

val max_pins : int
(** 6: the largest supported cut/gate size. *)

val build : ?cache:bool -> Cell.Genlib.t -> t
(** Precompute the match tables for a library. The library must contain an
    inverter (cell "INV").

    By default the result is served from / published to the persistent
    {!Runtime.Diskcache} ([_cache/matchlib-<digest>.bin]): building the
    shipped libraries costs ~0.8 s, loading the artifact is milliseconds.
    The digest covers the fully marshalled library (so a [with_tech]
    derivative never aliases its parent), {!max_pins}, a format version
    and the compiler version; any mismatch — including a truncated or
    corrupt file — falls back to a rebuild. [~cache:false] ([--no-cache])
    always rebuilds and writes nothing. *)

val digest_of : Cell.Genlib.t -> string
(** The cache digest {!build} keys this library under (exposed for cache
    tooling and tests). *)

val library : t -> Cell.Genlib.t
val inverter : t -> Cell.Genlib.gate

val lookup : t -> Logic.Truthtable.t -> candidate list
(** Candidates realizing exactly the given function (over its [nvars]
    variables, all in the support). The list is sorted by ascending area and
    always contains the fastest candidate. *)

val size : t -> int
(** Total number of table entries (for reporting). *)
