(** Cut-based technology mapping (the "map" half of our ABC substitute).

    Covers a subject AIG with library gates: K-feasible cuts are enumerated
    per node, each cut function is Boolean-matched against the library
    ({!Matchlib}), and dynamic programming selects per node and output
    polarity the match with the best objective. Phase conversions become
    explicit inverter cells. *)

type objective = Delay | Area
(** [Delay]: minimize arrival time, tie-break on area flow — the paper's
    flow maps for delay. [Area]: minimize area flow subject to no arrival
    constraint (used by the area-recovery ablation). *)

val map :
  ?objective:objective ->
  ?k:int ->
  ?max_cuts:int ->
  Matchlib.t ->
  Aigs.Aig.t ->
  Mapped.t
(** Map the AIG. Raises [Runtime.Cnt_error.Error] (code [Unmapped_node])
    if some cut function has no match and no decomposition applies (cannot
    happen when the library contains INV and NAND2/NOR2, since every AND
    node has its 2-leaf cut). *)

val map_checked :
  ?objective:objective ->
  ?k:int ->
  ?max_cuts:int ->
  Matchlib.t ->
  Aigs.Aig.t ->
  (Mapped.t, Runtime.Cnt_error.t) result
(** Hardened boundary around {!map}: every failure, including wrapped
    unexpected exceptions, is returned as a typed [techmap/*] error. *)
