module G = Cell.Genlib
module T = Logic.Truthtable

type candidate = { gate : G.gate; perm : int array; inv_mask : int }

type t = {
  lib : G.t;
  tables : (int64, candidate list) Hashtbl.t array; (* indexed by variable count *)
  inv : G.gate;
  mutable entries : int;
}

let max_pins = 6

let library t = t.lib
let inverter t = t.inv
let size t = t.entries

(* All permutations of [0..k-1]. *)
let rec permutations = function
  | [] -> [ [] ]
  | items ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) items in
          List.map (fun p -> x :: p) (permutations rest))
        items

let candidate_area c = c.gate.G.area
let candidate_delay c = c.gate.G.delay

let insert t k key cand =
  let table = t.tables.(k) in
  let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
  (* Skip exact duplicates of the same gate with same binding cost. *)
  let dominated =
    List.exists
      (fun c ->
        candidate_area c <= candidate_area cand && candidate_delay c <= candidate_delay cand)
      existing
  in
  if not dominated then begin
    let merged =
      List.sort (fun a b -> compare (candidate_area a) (candidate_area b)) (cand :: existing)
    in
    (* Keep the three best by area plus the fastest. *)
    let by_area =
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      take 3 merged
    in
    let fastest =
      List.fold_left
        (fun acc c -> if candidate_delay c < candidate_delay acc then c else acc)
        (List.hd merged) merged
    in
    let kept = if List.memq fastest by_area then by_area else fastest :: by_area in
    t.entries <- t.entries + (List.length kept - List.length existing);
    Hashtbl.replace table key kept
  end

(* Bump when [t]'s layout (or the meaning of its contents) changes: the
   version participates in the digest, so stale artifacts simply miss. *)
let format_version = 1

let digest_of lib =
  Runtime.Diskcache.digest
    [
      "matchlib";
      string_of_int format_version;
      Sys.ocaml_version;
      string_of_int max_pins;
      (* The full marshalled library, not just its genlib text: derived
         libraries ([G.with_tech]) change device parameters without
         changing any gate function. *)
      Marshal.to_string lib [];
    ]

let compute lib =
  let t =
    {
      lib;
      tables = Array.init (max_pins + 1) (fun _ -> Hashtbl.create 4096);
      inv = G.find_gate lib "INV";
      entries = 0;
    }
  in
  List.iter
    (fun (gate : G.gate) ->
      let k = gate.G.cell.Cell.Cells.pins in
      if k >= 1 && k <= max_pins then begin
        let base = Cell.Cells.tt gate.G.cell in
        let perms = permutations (List.init k (fun i -> i)) in
        List.iter
          (fun perm_list ->
            let perm = Array.of_list perm_list in
            for inv_mask = 0 to (1 lsl k) - 1 do
              (* Function computed when pin j is driven by
                 leaf perm.(j) xor (inv_mask bit j). *)
              let flipped = ref base in
              for j = 0 to k - 1 do
                if (inv_mask lsr j) land 1 = 1 then flipped := T.flip_input !flipped j
              done;
              let variant = T.permute !flipped perm in
              (* Only index functions with full support: cut functions are
                 shrunk to their support before lookup. *)
              if List.length (T.support variant) = k then
                insert t k (T.to_int64 variant) { gate; perm; inv_mask }
            done)
          perms
      end)
    lib.G.gates;
  t

let build ?(cache = true) lib =
  Runtime.Telemetry.with_span "techmap.matchlib.build" @@ fun () ->
  if cache then
    Runtime.Diskcache.with_cache ~name:"matchlib" ~digest:(digest_of lib)
      (fun () -> compute lib)
  else compute lib

let lookup t tt =
  let k = T.nvars tt in
  if k > max_pins then []
  else
    Option.value ~default:[] (Hashtbl.find_opt t.tables.(k) (T.to_int64 tt))
