module B = Logic.Bitvec
module G = Cell.Genlib

type report = {
  gates : int;
  area : float;
  delay : float;
  dynamic : float;
  short_circuit : float;
  static : float;
  gate_leak : float;
  total : float;
  edp : float;
}

let default_patterns = 640_000

(* Expected per-vector current of a cell assuming independent inputs with
   the given per-pin probabilities of being 1. *)
let expected_current probs by_vector =
  let pins = Array.length probs in
  let total = ref 0.0 in
  for v = 0 to (1 lsl pins) - 1 do
    let p = ref 1.0 in
    for j = 0 to pins - 1 do
      p := !p *. if (v lsr j) land 1 = 1 then probs.(j) else 1.0 -. probs.(j)
    done;
    total := !total +. (!p *. by_vector.(v))
  done;
  !total

module T = Runtime.Telemetry

let static_components (m : Mapped.t) ~probs =
  let tech = m.Mapped.lib.G.tech in
  let vdd = tech.Spice.Tech.vdd in
  let char_cache : (string, float array * float array) Hashtbl.t = Hashtbl.create 64 in
  let char_of gate =
    let name = gate.G.cell.Cell.Cells.name in
    match Hashtbl.find_opt char_cache name with
    | Some c -> c
    | None ->
        let pins = gate.G.cell.Cell.Cells.pins in
        let gp = Power.Pattern.analyze gate.G.impl ~pins in
        let ioff = Power.Leakage.gate_ioff tech gp in
        let ig = Power.Leakage.gate_ig tech gp in
        Hashtbl.replace char_cache name (ioff, ig);
        (ioff, ig)
  in
  let static = ref 0.0 and gate_leak = ref 0.0 in
  Array.iter
    (fun (c : Mapped.cell) ->
      let ioff_by_vector, ig_by_vector = char_of c.Mapped.gate in
      let pin_probs = Array.map probs c.Mapped.inputs in
      static := !static +. (expected_current pin_probs ioff_by_vector *. vdd);
      gate_leak := !gate_leak +. (expected_current pin_probs ig_by_vector *. vdd))
    m.Mapped.cells;
  (!static, !gate_leak)

(* Calibration size for the observed parallel speedup: big enough that
   per-word cost dominates, small next to the 640 K-pattern sweep. *)
let calibration_patterns = 65_536

let run ?domains ?(patterns = default_patterns) ?(seed = 42L)
    ?(wire_cap_per_fanout = 0.0) (m : Mapped.t) =
  T.with_span "techmap.estimate" (fun () ->
  let tech = m.Mapped.lib.G.tech in
  let vdd = tech.Spice.Tech.vdd in
  let f = Spice.Tech.frequency in
  let stimulus =
    Nets.Sim.random_stimulus ?domains ~seed
      ~inputs:(Array.length m.Mapped.pi_nets) ~patterns ()
  in
  let t0 = if T.enabled () then T.now () else 0.0 in
  let values =
    T.with_span "estimate.simulate" (fun () ->
        Mapped.simulate ?domains m stimulus)
  in
  if T.enabled () then begin
    let dt = T.now () -. t0 in
    T.count "estimate.patterns_simulated" patterns;
    T.count "estimate.cells_simulated" (Array.length m.Mapped.cells);
    if dt > 0.0 then
      T.observe "estimate.patterns_per_s" (float_of_int patterns /. dt);
    (* Observed speedup vs. a single domain, from a short sequential
       calibration run on a fresh stimulus slice. Telemetry is switched
       off around it so the calibration inflates no counters. *)
    let requested =
      match domains with
      | Some d -> d
      | None -> Runtime.Dpool.default_domains ()
    in
    if requested > 1 && dt > 0.0 && patterns >= calibration_patterns then begin
      let cal = min patterns calibration_patterns in
      let cal_stim =
        Nets.Sim.random_stimulus ~domains:1 ~seed
          ~inputs:(Array.length m.Mapped.pi_nets) ~patterns:cal ()
      in
      T.set_enabled false;
      let c0 = T.now () in
      ignore (Mapped.simulate ~domains:1 m cal_stim);
      let cdt = T.now () -. c0 in
      T.set_enabled true;
      if cdt > 0.0 then begin
        let rate_seq = float_of_int cal /. cdt in
        let rate_par = float_of_int patterns /. dt in
        T.observe "sim.parallel_speedup" (rate_par /. rate_seq)
      end
    end
  end;
  let toggle net =
    if patterns <= 1 then 0.0
    else float_of_int (B.transitions values.(net)) /. float_of_int (patterns - 1)
  in
  let prob net = float_of_int (B.popcount values.(net)) /. float_of_int patterns in
  let loads = Mapped.net_loads ~wire_cap_per_fanout m in
  (* Dynamic power: every net that toggles charges its load. *)
  let dynamic = ref 0.0 in
  for net = 0 to m.Mapped.num_nets - 1 do
    dynamic := !dynamic +. (toggle net *. loads.(net) *. f *. vdd *. vdd)
  done;
  (* Static and gate leakage from the per-gate characterization. *)
  let static, gate_leak =
    T.with_span "estimate.characterize" (fun () -> static_components m ~probs:prob)
  in
  let static = ref static and gate_leak = ref gate_leak in
  let short_circuit = Spice.Tech.short_circuit_fraction *. !dynamic in
  let total = !dynamic +. short_circuit +. !static +. !gate_leak in
  let delay = Mapped.delay m in
  {
    gates = Mapped.num_gates m;
    area = Mapped.area m;
    delay;
    dynamic = !dynamic;
    short_circuit;
    static = !static;
    gate_leak = !gate_leak;
    total;
    edp = Power.Powermodel.edp ~total_power:total ~delay ();
  })

let pp_report ppf r =
  Format.fprintf ppf
    "gates=%d area=%g delay=%.1fps PD=%.3guW PSC=%.3guW PS=%.3guW PG=%.3guW PT=%.3guW EDP=%.3g(1e-24 J.s)"
    r.gates r.area (r.delay *. 1e12) (r.dynamic *. 1e6) (r.short_circuit *. 1e6)
    (r.static *. 1e6) (r.gate_leak *. 1e6) (r.total *. 1e6) (r.edp *. 1e24)

let pp_row ppf (name, r) =
  Format.fprintf ppf "%-8s %5d %6.0f %8.2f %6.2f %8.2f %8.2f" name r.gates
    (r.delay *. 1e12) (r.dynamic *. 1e6) (r.static *. 1e6) (r.total *. 1e6)
    (r.edp *. 1e24)

(* Checked one-call pipeline from BLIF text to a report, shared by the
   [cntpower serve] daemon and anything else that holds a netlist as
   text rather than a file. Every stage failure comes back typed. *)
let run_blif ?domains ?patterns ?seed ~lib text =
  let module E = Runtime.Cnt_error in
  let ( let* ) = Result.bind in
  let* nl = Nets.Blif.parse_string text in
  let* _wf = Nets.Check.check nl in
  let* mapped =
    match
      E.protect ~stage:E.Techmap (fun () ->
          let aig = Aigs.Aig.of_netlist nl in
          let opt = Aigs.Opt.resyn2rs aig in
          let ml = Matchlib.build lib in
          Mapper.map_checked ml opt)
    with
    | Ok r -> r
    | Error _ as e -> e
  in
  E.protect ~stage:E.Power (fun () -> run ?domains ?patterns ?seed mapped)
