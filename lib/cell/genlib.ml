module T = Spice.Tech

type style = Ambipolar | Static

type gate = {
  cell : Cells.t;
  impl : Network.impl;
  tech : T.t;
  area : float;
  delay : float;
  input_caps : float array;
  output_drain_cap : float;
}

type t = { name : string; tech : T.t; style : style; gates : gate list }

let gate_of_cell tech style (cell : Cells.t) =
  let impl =
    match style with
    | Ambipolar -> Some cell.Cells.ambipolar
    | Static -> cell.Cells.static
  in
  Option.map
    (fun impl ->
      let loads = Network.impl_input_load impl cell.Cells.pins in
      {
        cell;
        impl;
        tech;
        area = float_of_int (Network.impl_transistors impl);
        delay = tech.T.tau *. float_of_int (Network.impl_stack impl);
        input_caps = Array.map (fun k -> float_of_int k *. tech.T.c_gate) loads;
        output_drain_cap =
          float_of_int (Network.impl_output_drains impl) *. tech.T.c_drain;
      })
    impl

let make name tech style cells =
  { name; tech; style; gates = List.filter_map (gate_of_cell tech style) cells }

let generalized_cntfet =
  make "cntfet-generalized" T.cntfet Ambipolar Cells.all

let conventional_cntfet =
  make "cntfet-conventional" T.cntfet Static Cells.conventional

let cmos = make "cmos" T.cmos Static Cells.conventional

let all_libraries = [ generalized_cntfet; conventional_cntfet; cmos ]

(* Data-file families (Libfile) land here. A registered library shadows a
   built-in (or an earlier registration) of the same name: explicit data
   beats compiled-in defaults, and re-loading a file is idempotent. *)
type origin = Builtin | Registered

let registered_libs : t list ref = ref []

let register lib =
  let shadowed =
    if List.exists (fun l -> l.name = lib.name) all_libraries then Some Builtin
    else if List.exists (fun l -> l.name = lib.name) !registered_libs then
      Some Registered
    else None
  in
  registered_libs :=
    List.filter (fun l -> l.name <> lib.name) !registered_libs @ [ lib ];
  shadowed

let registered () = !registered_libs
let reset_registry () = registered_libs := []

let libraries () =
  let reg = !registered_libs in
  let shadow l =
    match List.find_opt (fun r -> r.name = l.name) reg with
    | Some r -> r
    | None -> l
  in
  List.map shadow all_libraries
  @ List.filter
      (fun r -> not (List.exists (fun l -> l.name = r.name) all_libraries))
      reg

let library_names () = List.map (fun t -> t.name) (libraries ())

let find_library name =
  List.find_opt (fun t -> t.name = name) (libraries ())

let find_gate t name = List.find (fun g -> g.cell.Cells.name = name) t.gates

let with_tech t tech =
  let rebind (g : gate) = { g with tech } in
  { t with tech; gates = List.map rebind t.gates }

let gate_load g =
  g.output_drain_cap
  +. (float_of_int T.fanout *. T.inverter_input_cap g.tech)

let to_genlib_string t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun g ->
      let pin_name i = String.make 1 (Char.chr (Char.code 'A' + i)) in
      Buffer.add_string buf
        (Format.asprintf "GATE %s %g O=%a;\n" g.cell.Cells.name g.area
           (Logic.Expr.pp_named pin_name)
           g.cell.Cells.expr);
      for i = 0 to g.cell.Cells.pins - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  PIN %s UNKNOWN %g 999 %.4g %.4g %.4g %.4g\n"
             (pin_name i)
             (g.input_caps.(i) *. 1e15)
             (g.delay *. 1e12) 0.0 (g.delay *. 1e12) 0.0)
      done)
    t.gates;
  Buffer.contents buf

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Recursive-descent parser for genlib formulas: OR < XOR < AND < NOT. *)
let parse_formula text pin_index =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let rec parse_or () =
    let left = parse_xor () in
    skip_ws ();
    match peek () with
    | Some '+' ->
        advance ();
        Logic.Expr.or_ [ left; parse_or () ]
    | Some _ | None -> left
  and parse_xor () =
    let left = parse_and () in
    skip_ws ();
    match peek () with
    | Some '^' ->
        advance ();
        Logic.Expr.xor [ left; parse_xor () ]
    | Some _ | None -> left
  and parse_and () =
    let left = parse_not () in
    skip_ws ();
    match peek () with
    | Some '*' ->
        advance ();
        Logic.Expr.and_ [ left; parse_and () ]
    | Some _ | None -> left
  and parse_not () =
    skip_ws ();
    match peek () with
    | Some '!' ->
        advance ();
        Logic.Expr.not_ (parse_not ())
    | Some _ | None -> parse_atom ()
  and parse_atom () =
    skip_ws ();
    match peek () with
    | Some '(' ->
        advance ();
        let e = parse_or () in
        skip_ws ();
        (match peek () with
        | Some ')' -> advance ()
        | Some c -> fail "expected ')', found %C" c
        | None -> fail "expected ')', found end of formula");
        e
    | Some '0' ->
        advance ();
        Logic.Expr.const false
    | Some '1' ->
        advance ();
        Logic.Expr.const true
    | Some c when c >= 'A' && c <= 'Z' ->
        advance ();
        Logic.Expr.var (pin_index c)
    | Some c -> fail "unexpected character %C in formula" c
    | None -> fail "unexpected end of formula"
  in
  let e = parse_or () in
  skip_ws ();
  (match peek () with None -> () | Some c -> fail "trailing %C in formula" c);
  e

let parse_genlib text =
  let lines = String.split_on_char '\n' text in
  let gates = ref [] in
  let pending = ref None in
  let flush () =
    match !pending with
    | None -> ()
    | Some (name, area, expr, delays) ->
        let delay =
          match delays with [] -> 0.0 | d :: _ -> d
        in
        gates := (name, area, expr, delay) :: !gates;
        pending := None
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      let words =
        String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
      in
      match words with
      | "GATE" :: name :: area :: formula_parts ->
          flush ();
          let area =
            try float_of_string area with Failure _ -> fail "bad area %S" area
          in
          let formula = String.concat " " formula_parts in
          let formula =
            match String.index_opt formula '=' with
            | Some i ->
                String.sub formula (i + 1) (String.length formula - i - 1)
            | None -> fail "missing O= in %S" line
          in
          let formula =
            match String.index_opt formula ';' with
            | Some i -> String.sub formula 0 i
            | None -> fail "missing ';' in %S" line
          in
          (* Pins are named A..Z; assign variable indices by letter order so
             A = pin 0, matching the printer. *)
          let pin_index c = Char.code c - Char.code 'A' in
          let expr = parse_formula formula pin_index in
          pending := Some (name, area, expr, [])
      | "PIN" :: _ :: _ :: _ :: _ :: rise :: _ -> (
          match !pending with
          | None -> fail "PIN line outside GATE"
          | Some (name, area, expr, delays) ->
              let d = try float_of_string rise with Failure _ -> 0.0 in
              pending := Some (name, area, expr, delays @ [ d ]))
      | [] -> ()
      | first :: _ when String.length first > 0 && first.[0] = '#' -> ()
      | _ -> fail "unrecognized genlib line %S" line)
    lines;
  flush ();
  List.rev !gates

let pp_summary ppf t =
  let total_area = List.fold_left (fun acc g -> acc +. g.area) 0.0 t.gates in
  Format.fprintf ppf "%s: %d gates, %s technology, total area %g T, tau %.3g ps"
    t.name (List.length t.gates)
    (Format.asprintf "%a" T.pp_family t.tech.T.family)
    total_area
    (t.tech.T.tau *. 1e12)
