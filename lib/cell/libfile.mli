(** Declarative logic-family files ("genlib-plus"): a complete mapping
    library — technology corner, style, and per-gate records (function,
    transistor-level topology, area, pin delay, per-pin input caps, drain
    cap) — as a text file, so a new family is data, not OCaml.

    The format is a line-oriented superset of the information
    {!Genlib.to_genlib_string} renders:

    {v
    # comments start with '#'
    LIBRARY <name>
    STYLE ambipolar | static
    TECH cmos-32nm | cntfet-32nm     # base corner; keys below override it
      VDD 0.9        TEMPVT 0.02585  # (one key per line)
      VTHN 0.3       VTHP 0.3
      SS 1.1         SAT 1.65
      ISPEC 1.2e-9                   # omit to re-derive from IOFF
      IOFF 1e-10     IGON 4e-13     IGOFF 4e-14
      CGATE 1.8e-17  CDRAIN 1.8e-17 TAU 2.4e-12
    GATE <name> <pins> <area> O=<formula>;
      PU <network>                   # pull-up, conducts when output is 1
      PD <network>                   # pull-down
      OUTINV 0|1                     # networks compute the complement
      DELAY <seconds>
      INCAP <F> ... <F>              # one per pin
      DRAINCAP <F>
    END
    v}

    Formulas use the genlib operators over pins [A..] ({!Genlib.parse_formula});
    networks are [n(A)] / [p(!B)] / [tg(A,!B)] devices under [ser(...)] /
    [par(...)] combinators, mirroring {!Network.network}.

    The parser is line-numbered: every syntax error is a typed
    [library/parse-error] carrying [file] and [line] context. Loading also
    validates semantics ([library/validation-error]): every gate must name a
    cell of the {!Cells} catalog with matching pin count, its formula and its
    PU/PD topology must both realize that cell's truth table (complementarity
    included), areas/delays/capacitances must be finite and positive, gate
    names must be unique, transmission gates require [STYLE ambipolar], the
    corner must pass {!Spice.Tech.validate}, and the library must define
    [INV] (the match library and characterization need it). A library that
    loads is therefore safe for the whole pipeline.

    {!export} renders any {!Genlib.t} canonically (shortest float
    representations that round-trip exactly), so
    [export (parse (export lib)) = export lib] byte for byte — the property
    that pins the committed [data/libraries/*.genlibp] files to the
    built-ins they were exported from. *)

val extension : string
(** [".genlibp"] — what {!discover} looks for. *)

val libpath_env : string
(** ["CNTPOWER_LIBPATH"] — colon-separated directories scanned by
    {!discover}. *)

val parse : ?path:string -> string -> (Genlib.t, Runtime.Cnt_error.t) result
(** Parse and validate one library from text. [path] only labels error
    context. Does not touch the registry. *)

val load_file : string -> (Genlib.t, Runtime.Cnt_error.t) result
(** Read, parse and validate a file ([library/io-error] when unreadable).
    Does not touch the registry. *)

val export : Genlib.t -> string
(** Canonical text rendering; see the round-trip property above. *)

val register : Genlib.t -> string list
(** Register with {!Genlib.register}; the returned warnings (shadowing a
    built-in or replacing an earlier registration) are for the caller to
    surface — this module never prints. *)

val load : string -> (Genlib.t * string list, Runtime.Cnt_error.t) result
(** [load_file] followed by {!register}: the library becomes resolvable by
    name everywhere. Returns the registration warnings. *)

val discover : unit -> string list
(** The [*.genlibp] files on the {!libpath_env} search path, in path order
    (files within one directory sorted by name). Unset or empty entries are
    skipped silently; unreadable directories are skipped too (a missing
    search-path entry is not an error, a broken file is — at {!load} time). *)

val load_search_path :
  unit -> (string * (Genlib.t * string list, Runtime.Cnt_error.t) result) list
(** {!load} every discovered file, keeping per-file outcomes. *)
