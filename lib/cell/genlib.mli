(** Mapping libraries: a set of cells bound to a technology corner, with
    genlib-style area/delay annotations.

    This corresponds to the paper's "genlib libraries that were compiled for
    each logic family based on the area/delay values from [3]" (Section 4):
    one library per logic family — generalized ambipolar CNTFET,
    conventional CNTFET, and CMOS. *)

type style = Ambipolar | Static

type gate = {
  cell : Cells.t;
  impl : Network.impl;  (** realization used in this library *)
  tech : Spice.Tech.t;
  area : float;  (** normalized to unit transistors *)
  delay : float;  (** pin-to-output delay, seconds *)
  input_caps : float array;  (** per-pin input capacitance, F *)
  output_drain_cap : float;  (** intrinsic output capacitance, F *)
}

type t = {
  name : string;
  tech : Spice.Tech.t;
  style : style;
  gates : gate list;
}

val generalized_cntfet : t
(** All 46 cells, transmission-gate realizations, CNTFET corner. *)

val conventional_cntfet : t
(** Conventional cells only, static realizations, CNTFET corner. *)

val cmos : t
(** Conventional cells only, static realizations, 32 nm bulk CMOS corner. *)

val all_libraries : t list
(** The three built-in families, in Table 1 column order. *)

(** {1 Registry}

    Families defined as data files ({!Libfile}) register here and become
    indistinguishable from built-ins to every consumer that resolves
    through {!find_library} / {!libraries} — the CLI, the serve protocol,
    campaigns and Table 1. *)

type origin = Builtin | Registered

val register : t -> origin option
(** Register (or re-register) a library under its [name]. Returns what the
    registration shadowed, if anything: [Some Builtin] when the name
    collides with a built-in (callers should warn — explicit data wins),
    [Some Registered] when it replaces an earlier registration (idempotent
    re-load), [None] for a fresh name. *)

val registered : unit -> t list
(** Registered libraries, registration order. *)

val reset_registry : unit -> unit
(** Drop all registrations (tests). *)

val libraries : unit -> t list
(** The resolution view: built-ins (each shadowed by a same-named
    registration when present) followed by the remaining registered
    families in registration order. *)

val library_names : unit -> string list

val find_library : string -> t option
(** Look up a library by its [name] field in {!libraries} — built-ins
    (["cntfet-generalized"], ["cntfet-conventional"], ["cmos"]) plus
    registered data files; the string form used by the CLI and the
    [cntpower serve] protocol. *)

val find_gate : t -> string -> gate

val with_tech : t -> Spice.Tech.t -> t
(** Rebind the library (and every gate) to a derived technology corner —
    used by the V_DD / temperature sensitivity studies. Geometry-derived
    values (areas, capacitances) are kept. *)

val gate_load : gate -> float
(** Characterization-time output load: intrinsic drain capacitance plus
    [Tech.fanout] inverter-equivalent input loads (the paper's fanout-3
    assumption). *)

val to_genlib_string : t -> string
(** Render in SIS/ABC genlib syntax (for documentation and interop). *)

exception Parse_error of string

val parse_formula : string -> (char -> int) -> Logic.Expr.t
(** Parse one genlib formula ([*] [+] [^] [!] with the usual precedence,
    parentheses, pins [A]..[Z] mapped through the index function, [0]/[1]
    constants). Raises {!Parse_error}. Shared with the {!Libfile} parser. *)

val parse_genlib : string -> (string * float * Logic.Expr.t * float) list
(** Parse genlib text into (gate name, area, function over pins named
    A..Z in order of first appearance, pin delay in ps) tuples. Supports the
    subset emitted by {!to_genlib_string}: [GATE name area O=expr;] lines
    followed by [PIN] lines; [*] [+] [^] [!] operators with the usual
    precedence and parentheses. The round-trip property
    [parse_genlib (to_genlib_string lib)] recovers every gate's function
    and is exercised by the test suite. *)

val pp_summary : Format.formatter -> t -> unit
