module R = Runtime.Cnt_error
module T = Spice.Tech
module G = Genlib
module E = Logic.Expr
module N = Network

let extension = ".genlibp"
let libpath_env = "CNTPOWER_LIBPATH"

(* ------------------------------------------------------------------ *)
(* Canonical float text: the shortest decimal that parses back to the
   exact same double. This is what makes export/load round-trips
   byte-stable — "2.4e-12" stays "2.4e-12", not a 17-digit expansion. *)

let float_repr f =
  (* Integral values (areas, loads) read better as plain integers than as
     the %g shortest form ("10", not "1e+01"). *)
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    go 1

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pin_name i = String.make 1 (Char.chr (Char.code 'A' + i))

let render_signal b (s : N.signal) =
  if s.N.inverted then Buffer.add_char b '!';
  Buffer.add_string b (pin_name s.N.pin)

let rec render_net b = function
  | N.Dev (N.Fixed_n s) ->
      Buffer.add_string b "n(";
      render_signal b s;
      Buffer.add_char b ')'
  | N.Dev (N.Fixed_p s) ->
      Buffer.add_string b "p(";
      render_signal b s;
      Buffer.add_char b ')'
  | N.Dev (N.Tgate (s1, s2)) ->
      Buffer.add_string b "tg(";
      render_signal b s1;
      Buffer.add_char b ',';
      render_signal b s2;
      Buffer.add_char b ')'
  | N.Ser parts -> render_parts b "ser" parts
  | N.Par parts -> render_parts b "par" parts

and render_parts b kw parts =
  Buffer.add_string b kw;
  Buffer.add_char b '(';
  List.iteri
    (fun i part ->
      if i > 0 then Buffer.add_char b ',';
      render_net b part)
    parts;
  Buffer.add_char b ')'

let tech_keys (t : T.t) =
  [
    ("VDD", t.T.vdd);
    ("TEMPVT", t.T.temp_vt);
    ("VTHN", t.T.vth_n);
    ("VTHP", t.T.vth_p);
    ("SS", t.T.ss_factor);
    ("SAT", t.T.sat_exponent);
    ("ISPEC", t.T.ispec);
    ("IOFF", t.T.ioff_unit);
    ("IGON", t.T.ig_on_unit);
    ("IGOFF", t.T.ig_off_unit);
    ("CGATE", t.T.c_gate);
    ("CDRAIN", t.T.c_drain);
    ("TAU", t.T.tau);
  ]

let export (lib : G.t) =
  let b = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "# genlib-plus v1";
  line "LIBRARY %s" lib.G.name;
  line "STYLE %s"
    (match lib.G.style with G.Ambipolar -> "ambipolar" | G.Static -> "static");
  line "TECH %s" (Format.asprintf "%a" T.pp_family lib.G.tech.T.family);
  List.iter (fun (k, v) -> line "  %s %s" k (float_repr v)) (tech_keys lib.G.tech);
  List.iter
    (fun (g : G.gate) ->
      line "";
      line "GATE %s %d %s O=%s;" g.G.cell.Cells.name g.G.cell.Cells.pins
        (float_repr g.G.area)
        (Format.asprintf "%a" (E.pp_named pin_name) g.G.cell.Cells.expr);
      Buffer.add_string b "  PU ";
      render_net b g.G.impl.N.pull_up;
      Buffer.add_char b '\n';
      Buffer.add_string b "  PD ";
      render_net b g.G.impl.N.pull_down;
      Buffer.add_char b '\n';
      line "  OUTINV %d" (if g.G.impl.N.output_inverter then 1 else 0);
      line "  DELAY %s" (float_repr g.G.delay);
      line "  INCAP %s"
        (String.concat " "
           (Array.to_list (Array.map float_repr g.G.input_caps)));
      line "  DRAINCAP %s" (float_repr g.G.output_drain_cap);
      line "END")
    lib.G.gates;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Err of R.t

let fail_at ?path ~line code fmt =
  Format.kasprintf
    (fun message ->
      let context =
        (match path with None -> [] | Some p -> [ ("file", p) ])
        @ [ ("line", string_of_int line) ]
      in
      raise (Err (R.make ~context R.Library code message)))
    fmt

(* The matchlib index covers functions of up to 6 pins
   (Techmap.Matchlib.max_pins); a wider gate could never be matched. *)
let max_gate_pins = 6

(* A network over [pins] pins: n(A) / p(!B) / tg(A,!B) devices under
   ser(...) / par(...); spaces are insignificant. *)
let parse_network ?path ~line ~pins text =
  let fail fmt = fail_at ?path ~line R.Parse_error fmt in
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let adv () = incr pos in
  let skip_ws () =
    while !pos < n && (text.[!pos] = ' ' || text.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> adv ()
    | Some d -> fail "expected %C in network, found %C" c d
    | None -> fail "expected %C in network, found end of line" c
  in
  let parse_signal () =
    skip_ws ();
    let inverted =
      match peek () with
      | Some '!' ->
          adv ();
          true
      | _ -> false
    in
    match peek () with
    | Some c when c >= 'A' && c <= 'Z' ->
        adv ();
        let pin = Char.code c - Char.code 'A' in
        if pin >= pins then
          fail "pin %c out of range (gate has %d pin%s)" c pins
            (if pins = 1 then "" else "s");
        { N.pin; inverted }
    | Some c -> fail "expected a pin letter in network, found %C" c
    | None -> fail "expected a pin letter in network, found end of line"
  in
  let keyword () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      &&
      let c = text.[!pos] in
      c >= 'a' && c <= 'z'
    do
      incr pos
    done;
    String.sub text start (!pos - start)
  in
  let rec parse_net () =
    match keyword () with
    | "n" ->
        expect '(';
        let s = parse_signal () in
        expect ')';
        N.Dev (N.Fixed_n s)
    | "p" ->
        expect '(';
        let s = parse_signal () in
        expect ')';
        N.Dev (N.Fixed_p s)
    | "tg" ->
        expect '(';
        let s1 = parse_signal () in
        expect ',';
        let s2 = parse_signal () in
        expect ')';
        N.Dev (N.Tgate (s1, s2))
    | "ser" -> N.Ser (parse_list ())
    | "par" -> N.Par (parse_list ())
    | "" -> fail "expected n/p/tg/ser/par in network"
    | kw -> fail "unknown network element %S (want n/p/tg/ser/par)" kw
  and parse_list () =
    expect '(';
    let rec items acc =
      let x = parse_net () in
      skip_ws ();
      match peek () with
      | Some ',' ->
          adv ();
          items (x :: acc)
      | Some ')' ->
          adv ();
          List.rev (x :: acc)
      | Some c -> fail "expected ',' or ')' in network, found %C" c
      | None -> fail "unterminated ser/par in network"
    in
    items []
  in
  let net = parse_net () in
  skip_ws ();
  (match peek () with
  | None -> ()
  | Some c -> fail "trailing %C after network" c);
  net

let rec has_tgate = function
  | N.Dev (N.Tgate _) -> true
  | N.Dev _ -> false
  | N.Ser parts | N.Par parts -> List.exists has_tgate parts

(* Partially assembled GATE block. *)
type pgate = {
  g_line : int;
  g_name : string;
  g_pins : int;
  g_area : float;
  g_expr : E.t;
  mutable g_pu : N.network option;
  mutable g_pd : N.network option;
  mutable g_outinv : bool option;
  mutable g_delay : float option;
  mutable g_incap : float array option;
  mutable g_drain : float option;
}

type state = Top | In_tech | In_gate of pgate

let base_corner ?path ~line = function
  | "cmos-32nm" -> T.cmos
  | "cntfet-32nm" -> T.cntfet
  | other ->
      fail_at ?path ~line R.Parse_error
        "unknown TECH base corner %S (cmos-32nm or cntfet-32nm)" other

let set_tech_key (t : T.t) key v =
  match key with
  | "VDD" -> Some { t with T.vdd = v }
  | "TEMPVT" -> Some { t with T.temp_vt = v }
  | "VTHN" -> Some { t with T.vth_n = v }
  | "VTHP" -> Some { t with T.vth_p = v }
  | "SS" -> Some { t with T.ss_factor = v }
  | "SAT" -> Some { t with T.sat_exponent = v }
  | "ISPEC" -> Some { t with T.ispec = v }
  | "IOFF" -> Some { t with T.ioff_unit = v }
  | "IGON" -> Some { t with T.ig_on_unit = v }
  | "IGOFF" -> Some { t with T.ig_off_unit = v }
  | "CGATE" -> Some { t with T.c_gate = v }
  | "CDRAIN" -> Some { t with T.c_drain = v }
  | "TAU" -> Some { t with T.tau = v }
  | _ -> None

let parse_exn ?path text =
  let lib_name = ref None in
  let style = ref None in
  let tech = ref None in
  let ispec_explicit = ref false in
  let tech_line = ref 0 in
  let gates : (int * G.gate) list ref = ref [] in
  let state = ref Top in
  let finish_tech () =
    (* An ISPEC-less corner is stated by its measurable off-current; derive
       the EKV specific current from the final field values, exactly as
       Tech.make does for the built-ins. *)
    match !tech with
    | Some t when not !ispec_explicit ->
        tech :=
          Some
            {
              t with
              T.ispec =
                T.derive_ispec ~n:t.T.ss_factor ~alpha:t.T.sat_exponent
                  ~vth:t.T.vth_n ~vt:t.T.temp_vt ~vdd:t.T.vdd t.T.ioff_unit;
            }
    | _ -> ()
  in
  let num ~line what s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v -> v
    | Some _ ->
        fail_at ?path ~line R.Parse_error "%s must be finite, got %s" what s
    | None -> fail_at ?path ~line R.Parse_error "bad %s %S" what s
  in
  let positive ~line what v =
    if not (Float.is_finite v && v > 0.0) then
      fail_at ?path ~line R.Validation_error
        "%s must be positive and finite (got %s)" what (float_repr v)
  in
  let finish_gate ~line (pg : pgate) =
    let fail fmt = fail_at ?path ~line R.Parse_error fmt in
    let fail_v fmt = fail_at ?path ~line R.Validation_error fmt in
    let missing =
      List.filter_map
        (fun (k, present) -> if present then None else Some k)
        [
          ("PU", pg.g_pu <> None);
          ("PD", pg.g_pd <> None);
          ("OUTINV", pg.g_outinv <> None);
          ("DELAY", pg.g_delay <> None);
          ("INCAP", pg.g_incap <> None);
          ("DRAINCAP", pg.g_drain <> None);
        ]
    in
    if missing <> [] then
      fail "GATE %s is missing %s" pg.g_name (String.concat ", " missing);
    let cell =
      match Cells.find pg.g_name with
      | c -> c
      | exception Not_found ->
          fail_v "unknown cell %S: every gate must name a cell of the catalog"
            pg.g_name
    in
    if cell.Cells.pins <> pg.g_pins then
      fail_v "GATE %s declares %d pins but cell %s has %d" pg.g_name pg.g_pins
        cell.Cells.name cell.Cells.pins;
    let tt = Cells.tt cell in
    if not (Logic.Truthtable.equal (E.to_tt pg.g_pins pg.g_expr) tt) then
      fail_v "GATE %s formula does not compute the %s function" pg.g_name
        cell.Cells.name;
    let impl =
      {
        N.pull_up = Option.get pg.g_pu;
        pull_down = Option.get pg.g_pd;
        output_inverter = Option.get pg.g_outinv;
      }
    in
    (match !style with
    | Some G.Static
      when has_tgate impl.N.pull_up || has_tgate impl.N.pull_down ->
        fail_v
          "GATE %s uses a transmission gate; tg(..) requires STYLE ambipolar"
          pg.g_name
    | _ -> ());
    let realized =
      match N.impl_function impl pg.g_pins with
      | f -> f
      | exception Failure msg ->
          fail_v "GATE %s PU/PD networks are not complementary: %s" pg.g_name
            msg
    in
    if not (Logic.Truthtable.equal realized tt) then
      fail_v "GATE %s topology does not realize the %s function" pg.g_name
        cell.Cells.name;
    let incap = Option.get pg.g_incap in
    if Array.length incap <> pg.g_pins then
      fail_v "GATE %s INCAP lists %d value(s) for %d pin(s)" pg.g_name
        (Array.length incap) pg.g_pins;
    Array.iteri
      (fun i c ->
        positive ~line
          (Printf.sprintf "INCAP %s of GATE %s" (pin_name i) pg.g_name)
          c)
      incap;
    positive ~line (Printf.sprintf "area of GATE %s" pg.g_name) pg.g_area;
    positive ~line
      (Printf.sprintf "DELAY of GATE %s" pg.g_name)
      (Option.get pg.g_delay);
    positive ~line
      (Printf.sprintf "DRAINCAP of GATE %s" pg.g_name)
      (Option.get pg.g_drain);
    (match
       List.find_opt
         (fun (_, (g : G.gate)) -> g.G.cell.Cells.name = pg.g_name)
         !gates
     with
    | Some (prev_line, _) ->
        fail_v "duplicate GATE %s (first defined at line %d)" pg.g_name
          prev_line
    | None -> ());
    let tech =
      match !tech with
      | Some t -> t
      | None -> fail "GATE %s before any TECH block" pg.g_name
    in
    let g =
      {
        G.cell;
        impl;
        tech;
        area = pg.g_area;
        delay = Option.get pg.g_delay;
        input_caps = incap;
        output_drain_cap = Option.get pg.g_drain;
      }
    in
    gates := !gates @ [ (pg.g_line, g) ]
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let fail fmt = fail_at ?path ~line:ln R.Parse_error fmt in
      let body =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let tokens =
        String.map (function '\t' -> ' ' | c -> c) body
        |> String.split_on_char ' '
        |> List.filter (fun w -> w <> "")
      in
      match tokens with
      | [] -> ()
      | kw :: rest -> (
          if !lib_name = None && kw <> "LIBRARY" then
            fail "expected LIBRARY as the first statement, found %s" kw;
          match kw with
          | "LIBRARY" -> (
              if !lib_name <> None then fail "duplicate LIBRARY statement";
              match rest with
              | [ name ] -> lib_name := Some name
              | _ -> fail "LIBRARY wants exactly one name")
          | "STYLE" -> (
              state := Top;
              if !style <> None then fail "duplicate STYLE statement";
              match rest with
              | [ "ambipolar" ] -> style := Some G.Ambipolar
              | [ "static" ] -> style := Some G.Static
              | _ -> fail "STYLE must be ambipolar or static")
          | "TECH" -> (
              if !tech <> None then fail "duplicate TECH block";
              match rest with
              | [ base ] ->
                  tech := Some (base_corner ?path ~line:ln base);
                  ispec_explicit := false;
                  tech_line := ln;
                  state := In_tech
              | _ -> fail "TECH wants exactly one base corner name")
          | "GATE" -> (
              (match !state with
              | In_gate pg ->
                  fail "GATE %s at line %d is missing END" pg.g_name pg.g_line
              | In_tech | Top -> ());
              finish_tech ();
              (match (!style, !tech) with
              | None, _ -> fail "GATE before the STYLE statement"
              | _, None -> fail "GATE before the TECH block"
              | Some _, Some _ -> ());
              match rest with
              | name :: pins :: area :: formula_parts ->
                  let pins_n =
                    match int_of_string_opt pins with
                    | Some p when p >= 1 && p <= max_gate_pins -> p
                    | Some p ->
                        fail "GATE %s pin count %d out of range [1, %d]" name p
                          max_gate_pins
                    | None -> fail "bad pin count %S" pins
                  in
                  let area_v = num ~line:ln "area" area in
                  let formula = String.concat " " formula_parts in
                  let formula =
                    match
                      ( String.length formula >= 2 && String.sub formula 0 2 = "O=",
                        String.length formula >= 1
                        && formula.[String.length formula - 1] = ';' )
                    with
                    | true, true ->
                        String.sub formula 2 (String.length formula - 3)
                    | false, _ -> fail "GATE %s formula must start with O=" name
                    | _, false -> fail "GATE %s formula must end with ';'" name
                  in
                  let pin_index c =
                    let i = Char.code c - Char.code 'A' in
                    if i >= pins_n then
                      raise
                        (G.Parse_error
                           (Printf.sprintf "pin %c out of range (gate has %d pin(s))" c
                              pins_n));
                    i
                  in
                  let expr =
                    match G.parse_formula formula pin_index with
                    | e -> e
                    | exception G.Parse_error msg ->
                        fail "GATE %s formula: %s" name msg
                  in
                  state :=
                    In_gate
                      {
                        g_line = ln;
                        g_name = name;
                        g_pins = pins_n;
                        g_area = area_v;
                        g_expr = expr;
                        g_pu = None;
                        g_pd = None;
                        g_outinv = None;
                        g_delay = None;
                        g_incap = None;
                        g_drain = None;
                      }
              | _ -> fail "GATE wants: GATE <name> <pins> <area> O=<formula>;")
          | _ -> (
              match !state with
              | In_tech -> (
                  match rest with
                  | [ v ] -> (
                      let v = num ~line:ln (Printf.sprintf "TECH %s" kw) v in
                      match set_tech_key (Option.get !tech) kw v with
                      | Some t ->
                          tech := Some t;
                          if kw = "ISPEC" then ispec_explicit := true
                      | None -> fail "unknown TECH key %S" kw)
                  | _ -> fail "TECH key %s wants exactly one value" kw)
              | In_gate pg -> (
                  let dup what present =
                    if present then fail "duplicate %s in GATE %s" what pg.g_name
                  in
                  match (kw, rest) with
                  | "PU", _ ->
                      dup "PU" (pg.g_pu <> None);
                      pg.g_pu <-
                        Some
                          (parse_network ?path ~line:ln ~pins:pg.g_pins
                             (String.concat " " rest))
                  | "PD", _ ->
                      dup "PD" (pg.g_pd <> None);
                      pg.g_pd <-
                        Some
                          (parse_network ?path ~line:ln ~pins:pg.g_pins
                             (String.concat " " rest))
                  | "OUTINV", [ v ] ->
                      dup "OUTINV" (pg.g_outinv <> None);
                      pg.g_outinv <-
                        Some
                          (match v with
                          | "0" -> false
                          | "1" -> true
                          | _ -> fail "OUTINV must be 0 or 1, got %S" v)
                  | "DELAY", [ v ] ->
                      dup "DELAY" (pg.g_delay <> None);
                      pg.g_delay <- Some (num ~line:ln "DELAY" v)
                  | "INCAP", (_ :: _ as vs) ->
                      dup "INCAP" (pg.g_incap <> None);
                      pg.g_incap <-
                        Some
                          (Array.of_list
                             (List.map (num ~line:ln "INCAP value") vs))
                  | "DRAINCAP", [ v ] ->
                      dup "DRAINCAP" (pg.g_drain <> None);
                      pg.g_drain <- Some (num ~line:ln "DRAINCAP" v)
                  | "END", [] ->
                      finish_gate ~line:ln pg;
                      state := Top
                  | ("OUTINV" | "DELAY" | "DRAINCAP" | "END" | "INCAP"), _ ->
                      fail "malformed %s line in GATE %s" kw pg.g_name
                  | _ ->
                      fail "unrecognized line %S inside GATE %s" kw pg.g_name)
              | Top -> fail "unrecognized statement %S" kw)))
    lines;
  let eof = List.length lines in
  let fail fmt = fail_at ?path ~line:eof R.Parse_error fmt in
  let fail_v fmt = fail_at ?path ~line:eof R.Validation_error fmt in
  (match !state with
  | In_gate pg ->
      fail "file truncated: GATE %s at line %d has no END" pg.g_name pg.g_line
  | In_tech | Top -> ());
  finish_tech ();
  let name =
    match !lib_name with
    | Some n -> n
    | None -> fail "missing LIBRARY statement"
  in
  let style =
    match !style with Some s -> s | None -> fail "missing STYLE statement"
  in
  let tech =
    match !tech with Some t -> t | None -> fail "missing TECH block"
  in
  (match T.validate tech with
  | Ok _ -> ()
  | Result.Error e ->
      fail_at ?path ~line:!tech_line R.Validation_error "invalid TECH corner: %s"
        e.R.message);
  let gates = List.map snd !gates in
  if not (List.exists (fun (g : G.gate) -> g.G.cell.Cells.name = "INV") gates)
  then
    fail_v
      "library %s does not define INV (matching and characterization need it)"
      name;
  { G.name; tech; style; gates }

let parse ?path text =
  match parse_exn ?path text with
  | lib -> Ok lib
  | exception Err e -> Result.Error e

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m ->
      R.error ~context:[ ("file", path) ] R.Library R.Io_error "%s" m
  | text -> parse ~path text

let register (lib : G.t) =
  match G.register lib with
  | Some G.Builtin ->
      [
        Printf.sprintf
          "library %S shadows the built-in library of the same name"
          lib.G.name;
      ]
  | Some G.Registered ->
      [ Printf.sprintf "library %S replaces an earlier registration" lib.G.name ]
  | None -> []

let load path =
  Result.map (fun lib -> (lib, register lib)) (load_file path)

let discover () =
  match Sys.getenv_opt libpath_env with
  | None | Some "" -> []
  | Some path ->
      String.split_on_char ':' path
      |> List.concat_map (fun dir ->
             if dir = "" then []
             else
               match Sys.readdir dir with
               | exception Sys_error _ -> []
               | files ->
                   Array.to_list files
                   |> List.filter (fun f -> Filename.check_suffix f extension)
                   |> List.sort compare
                   |> List.map (Filename.concat dir))

let load_search_path () = List.map (fun p -> (p, load p)) (discover ())
